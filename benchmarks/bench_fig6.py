"""Figure 6 — CPU cost vs number of hash functions K.

Paper protocol (Section VI-B): run Bit and Sketch representations under
both combination orders on VS1, sweeping K. Expected shape: the Sketch
method's cost grows steeply with K (every comparison and combination is
an O(K) vector operation), the Bit method stays nearly flat
(word-parallel bit operations); Geometric order is much cheaper than
Sequential for the Sketch method.

Measurement method. At this reproduction's scale the detector's absolute
wall-clock sits at ~0.1-0.3 s, where scheduler noise swamps the
representational term, so the figure is regenerated the way Eq. (4)
expresses it: the engines' *deterministic primitive-operation counts*
(instrumented per run) are priced with per-operation costs measured in
tight micro-benchmarks at each K. Wall-clock is printed alongside for
reference but not asserted on.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import dump_metrics_snapshot
from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import run_detector
from repro.minhash.family import MinHashFamily
from repro.signature.bitsig import BitSignature

#: The sweep reaches past the paper's 3000 because numpy's fixed per-call
#: overhead flattens O(K) costs below K ≈ 1000; the asymptotic contrast
#: the paper's C++ shows at K=3000 appears here at the top of this range.
K_SWEEP = (100, 400, 1600, 6400)

VARIANTS = [
    ("Bit-Seq", Representation.BIT, CombinationOrder.SEQUENTIAL),
    ("Bit-Geo", Representation.BIT, CombinationOrder.GEOMETRIC),
    ("Sketch-Seq", Representation.SKETCH, CombinationOrder.SEQUENTIAL),
    ("Sketch-Geo", Representation.SKETCH, CombinationOrder.GEOMETRIC),
]


def _measure(operation, repetitions=3000):
    """Median-of-3 timing of ``repetitions`` calls (seconds per call)."""
    samples = []
    for _trial in range(3):
        started = time.perf_counter()
        for _ in range(repetitions):
            operation()
        samples.append((time.perf_counter() - started) / repetitions)
    return sorted(samples)[1]


def _per_op_costs(num_hashes, num_queries=12):
    """Micro-benchmark the primitive costs at width K.

    ``bit_encode`` is priced the way the engine performs it: one batched
    (m, K) comparison + packbits per window, divided by m.
    """
    family = MinHashFamily(num_hashes=num_hashes, seed=1)
    rng = np.random.default_rng(0)
    sketch_a = family.sketch(rng.choice(10_000, size=40, replace=False))
    sketch_b = family.sketch(rng.choice(10_000, size=40, replace=False))
    sig_a = BitSignature.encode(sketch_a, sketch_b)
    sig_b = BitSignature.encode(sketch_b, sketch_a)
    matrix = np.stack(
        [
            family.sketch(rng.choice(10_000, size=40, replace=False)).values
            for _ in range(num_queries)
        ]
    )
    values = sketch_a.values

    def batched_encode():
        ge = np.packbits(values[np.newaxis, :] <= matrix, axis=1, bitorder="little")
        lt = np.packbits(values[np.newaxis, :] < matrix, axis=1, bitorder="little")
        for row in range(num_queries):
            BitSignature._raw(
                int.from_bytes(ge[row].tobytes(), "little"),
                int.from_bytes(lt[row].tobytes(), "little"),
                num_hashes,
            )

    return {
        "sketch_compare": _measure(lambda: sketch_a.similarity(sketch_b)),
        "sketch_combine": _measure(lambda: sketch_a.combine(sketch_b)),
        "bit_or_score": _measure(lambda: sig_a.combine(sig_b).similarity),
        "bit_encode": _measure(batched_encode, repetitions=500) / num_queries,
    }


def _model_cost(stats, costs):
    """Price a run's instrumented op counts with the measured constants."""
    return (
        stats.sketch_comparisons * costs["sketch_compare"]
        + stats.sketch_combines * costs["sketch_combine"]
        + (stats.signature_combines + stats.signature_prunes)
        * costs["bit_or_score"]
        + stats.signature_encodes * costs["bit_encode"]
    )


def test_fig6_cost_vs_k(benchmark, vs1_prepared):
    def sweep():
        modeled = {name: [] for name, _r, _o in VARIANTS}
        wall = {name: [] for name, _r, _o in VARIANTS}
        for num_hashes in K_SWEEP:
            costs = _per_op_costs(num_hashes)
            for name, representation, order in VARIANTS:
                config = DetectorConfig(
                    num_hashes=num_hashes,
                    representation=representation,
                    order=order,
                    use_index=False,
                )
                result = run_detector(vs1_prepared, config)
                dump_metrics_snapshot(
                    f"fig6_{name}_K{num_hashes}", result.metrics
                )
                modeled[name].append(_model_cost(result.stats, costs))
                wall[name].append(result.cpu_seconds)
        return modeled, wall

    modeled, wall = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    rows = [
        [name] + [f"{t:.4f}" for t in series] for name, series in modeled.items()
    ]
    print(
        format_table(
            ["method"] + [f"K={k}" for k in K_SWEEP],
            rows,
            title="Figure 6: modeled query-processing seconds vs K "
            "(Eq. (4) op counts x measured per-op cost; VS1, no index)",
        )
    )
    print(render_chart(modeled, K_SWEEP, title="modeled cost vs K",
                       y_label="sec"))
    for name, series in modeled.items():
        print(format_series(f"model {name}", K_SWEEP, series))
    for name, series in wall.items():
        print(format_series(f"wall  {name}", K_SWEEP, series))

    # Shape assertions on the deterministic model. The paper's C++
    # prototype compares K raw values per sketch operation, so its Bit
    # method wins by the word-parallel factor (~64x in op count); our
    # Sketch comparisons are numpy (already word-parallel C), which
    # compresses the magnitude. The *shape* survives: Bit sits below
    # Sketch under the Sequential order and its K-growth is slower.
    sketch_growth = modeled["Sketch-Seq"][-1] - modeled["Sketch-Seq"][0]
    bit_growth = modeled["Bit-Seq"][-1] - modeled["Bit-Seq"][0]
    assert sketch_growth > bit_growth, (
        f"Sketch should grow faster: +{sketch_growth:.4f}s "
        f"vs +{bit_growth:.4f}s"
    )
    # At the largest K, Bit beats Sketch under the Sequential order
    # (where candidate maintenance dominates).
    assert modeled["Bit-Seq"][-1] < modeled["Sketch-Seq"][-1]
    # Geometric is far cheaper than Sequential for the Sketch method.
    assert modeled["Sketch-Geo"][-1] < modeled["Sketch-Seq"][-1] / 2
