"""Supervisor benchmark: recovery latency and supervision overhead.

Measures what the self-healing layer (`repro.serve.supervisor`) costs
when nothing fails, and how fast it heals when something does:

* **steady-state supervision overhead** — the identical chunk stream
  through an unsupervised service and a supervised one (no chaos), per
  backend and worker count. Supervision adds a request log, a rolling
  ``("state",)`` snapshot probe every ``snapshot_every`` stream
  messages, and per-reply validation; the target is **< 5 %** of
  baseline throughput (enforced in full mode, reported in ``--quick``).
* **recovery latency** — a seeded ``kill:0@N`` chaos plan fells one
  worker mid-stream; the ``serve.supervisor.recovery`` timer measures
  kill detection → respawn from the rolling snapshot → replay of the
  logged batches → first post-restart reply, reported as mean
  milliseconds per recovery.

Every run of a workload must produce the identical match stream — the
serial reference, the unsupervised run, the supervised run and the
chaos run — enforced the same way ``bench_serve_scaling.py`` enforces
shard transparency. Process-backend runs additionally assert zero
outstanding shared-memory references after close.

Usage::

    PYTHONPATH=src python benchmarks/bench_supervisor.py [--quick]

Writes ``BENCH_SUPERVISOR.json`` at the repository root (override with
``--output``). Standalone CLI, not a pytest module; the rows feed
docs/robustness.md and the CI chaos-serve step.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.config import DetectorConfig
from repro.core.query import QuerySet
from repro.minhash.family import MinHashFamily
from repro.serve import ChaosPlan, DetectionService, SupervisorConfig

BENCH_SEED = 20080407  # ICDE 2008 in Cancún
KEYFRAMES_PER_SECOND = 2.0
WINDOW_SECONDS = 5.0
THRESHOLD = 0.7
CELL_ID_SPACE = 40_960
QUERY_SECONDS = (40.0, 60.0)
CHUNK_WINDOWS = 8
SNAPSHOT_EVERY = 8
OVERHEAD_BUDGET = 0.05  # the satellite's steady-state target


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_workload(rng: np.random.Generator, num_queries: int,
                   stream_frames: int):
    """Query cell ids and a chunked stream with planted copies."""
    frames_min = int(QUERY_SECONDS[0] * KEYFRAMES_PER_SECOND)
    frames_max = int(QUERY_SECONDS[1] * KEYFRAMES_PER_SECOND)
    cell_ids: Dict[int, np.ndarray] = {}
    frame_counts: Dict[int, int] = {}
    for qid in range(num_queries):
        n = int(rng.integers(frames_min, frames_max + 1))
        cell_ids[qid] = rng.integers(0, CELL_ID_SPACE, size=n)
        frame_counts[qid] = n
    stream = rng.integers(0, CELL_ID_SPACE, size=stream_frames)
    for qid in range(0, num_queries, max(1, num_queries // 3)):
        copy = np.asarray(cell_ids[qid])
        at = int(rng.integers(0, stream_frames - copy.size))
        stream[at : at + copy.size] = copy
    window_frames = max(1, round(WINDOW_SECONDS * KEYFRAMES_PER_SECOND))
    chunk_frames = CHUNK_WINDOWS * window_frames
    chunks = [
        stream[offset : offset + chunk_frames]
        for offset in range(0, stream_frames, chunk_frames)
    ]
    return cell_ids, frame_counts, chunks


def run_stream(config, family, cell_ids, frame_counts, chunks,
               workers, backend, **extra):
    """One timed pass, chunk by chunk (one stream message per chunk,
    matching the CLI's cadence so chaos positions mean chunk indices).
    Returns throughput, the match keys, and the metrics snapshot."""
    queries = QuerySet.from_cell_ids(cell_ids, frame_counts, family)
    service = DetectionService(
        config, queries, KEYFRAMES_PER_SECOND,
        num_workers=workers, backend=backend, **extra,
    )
    try:
        start = time.perf_counter()
        for position, chunk in enumerate(chunks):
            service.run([chunk], flush=position == len(chunks) - 1)
        elapsed = time.perf_counter() - start
        matches = [
            (m.qid, m.window_index, m.start_frame, m.end_frame,
             m.similarity)
            for m in service.matches
        ]
        metrics = service.metrics_snapshot()
    finally:
        service.close()
    frames = sum(len(chunk) for chunk in chunks)
    return {
        "frames_per_sec": frames / elapsed if elapsed > 0 else 0.0,
        "matches": matches,
        "metrics": metrics,
    }


def recovery_ms(metrics: Dict[str, object]) -> float:
    timer = metrics["timers"].get("serve.supervisor.recovery")
    if not timer or not timer["calls"]:
        raise SystemExit("chaos run recorded no recovery — plan misfired")
    return 1e3 * timer["seconds"] / timer["calls"]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small stream, thread backend, one repeat, "
        "overhead reported but not enforced",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_SUPERVISOR.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per configuration (best throughput is kept)",
    )
    args = parser.parse_args(argv)

    num_queries = 8 if args.quick else 16
    stream_frames = 1600 if args.quick else 6400
    repeats = args.repeats or (1 if args.quick else 5)
    backends = ["thread"] if args.quick else ["thread", "process"]
    worker_counts = [2] if args.quick else [2, 4]

    config = DetectorConfig(
        num_hashes=128 if args.quick else 256,
        threshold=THRESHOLD,
        window_seconds=WINDOW_SECONDS,
    )
    family = MinHashFamily(num_hashes=config.num_hashes, seed=BENCH_SEED)
    rng = np.random.default_rng(BENCH_SEED)
    cell_ids, frame_counts, chunks = build_workload(
        rng, num_queries, stream_frames
    )
    kill_at = max(2, len(chunks) // 2)
    supervisor = SupervisorConfig(
        recv_deadline=2.0, snapshot_every=SNAPSHOT_EVERY
    )

    reference = run_stream(
        config, family, cell_ids, frame_counts, chunks, 1, "serial"
    )["matches"]
    if not reference:
        raise SystemExit("workload produced no matches — nothing to verify")

    results: List[Dict[str, object]] = []
    for backend in backends:
        for workers in worker_counts:
            best_base = best_sup = None
            paired_overheads: List[float] = []
            recoveries: List[float] = []
            restarts = 0
            for _ in range(repeats):
                base = run_stream(
                    config, family, cell_ids, frame_counts, chunks,
                    workers, backend,
                )
                sup = run_stream(
                    config, family, cell_ids, frame_counts, chunks,
                    workers, backend,
                    supervise=True, supervisor=supervisor,
                )
                chaos = run_stream(
                    config, family, cell_ids, frame_counts, chunks,
                    workers, backend,
                    supervise=True, supervisor=supervisor,
                    chaos=ChaosPlan.parse(f"kill:0@{kill_at}"),
                )
                for label, sample in (
                    ("baseline", base), ("supervised", sup),
                    ("chaos-kill", chaos),
                ):
                    if sample["matches"] != reference:
                        raise SystemExit(
                            f"{label} {backend}/w={workers} diverged from "
                            f"the serial reference "
                            f"({len(sample['matches'])} vs "
                            f"{len(reference)} matches)"
                        )
                    if backend == "process":
                        refs = sample["metrics"]["serve"][
                            "shm_outstanding_refs"
                        ]
                        if refs:
                            raise SystemExit(
                                f"{label} {backend}/w={workers} leaked "
                                f"{refs} shared-memory refs"
                            )
                recoveries.append(recovery_ms(chaos["metrics"]))
                restarts = chaos["metrics"]["counters"][
                    "serve.supervisor.restarts"
                ]
                paired_overheads.append(
                    1.0 - sup["frames_per_sec"] / base["frames_per_sec"]
                )
                if best_base is None or (
                    base["frames_per_sec"] > best_base
                ):
                    best_base = base["frames_per_sec"]
                if best_sup is None or sup["frames_per_sec"] > best_sup:
                    best_sup = sup["frames_per_sec"]
            # Machine throughput drifts several percent over the minutes
            # a full run takes; the median of *adjacent-pair* ratios
            # cancels that drift where best-of ratios do not.
            overhead = float(np.median(paired_overheads))
            row = {
                "backend": backend,
                "workers": workers,
                "baseline_frames_per_sec": best_base,
                "supervised_frames_per_sec": best_sup,
                "supervision_overhead": overhead,
                "recovery_ms": float(np.mean(recoveries)),
                "chaos_restarts": int(restarts),
                "matches": len(reference),
            }
            results.append(row)
            print(
                f"{backend:>8s} w={workers}: baseline "
                f"{best_base:9.0f} f/s, supervised {best_sup:9.0f} f/s "
                f"(overhead {100 * overhead:+5.1f}%), recovery "
                f"{row['recovery_ms']:7.1f} ms over {restarts} restart(s)"
            )
            if not args.quick and overhead > OVERHEAD_BUDGET:
                raise SystemExit(
                    f"supervision overhead {100 * overhead:.1f}% on "
                    f"{backend}/w={workers} exceeds the "
                    f"{100 * OVERHEAD_BUDGET:.0f}% budget"
                )

    report = {
        "benchmark": "supervisor",
        "seed": BENCH_SEED,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_cores": available_cores(),
        "overhead_budget": OVERHEAD_BUDGET,
        "workload": {
            "num_queries": num_queries,
            "stream_frames": stream_frames,
            "num_chunks": len(chunks),
            "chunk_windows": CHUNK_WINDOWS,
            "window_seconds": WINDOW_SECONDS,
            "keyframes_per_second": KEYFRAMES_PER_SECOND,
            "num_hashes": config.num_hashes,
            "threshold": THRESHOLD,
            "kill_at_chunk": kill_at,
            "snapshot_every": SNAPSHOT_EVERY,
            "matches": len(reference),
        },
        "results": results,
    }
    args.output.write_text(json.dumps(report, indent=1, sort_keys=True))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
