"""Figure 10 — memory: average resident bit signatures.

Paper protocol (Section VI-D): BitIndex with Sequential order on VS2.
(a) sweep the similarity threshold δ from 0.5 to 0.9 — higher δ prunes
    more aggressively (Lemma 2's bound K(1−δ) shrinks), so fewer
    signatures stay resident;
(b) sweep the basic window size w from 5 s to 20 s — larger windows hold
    more distinct frames, window/query relations resolve faster, and the
    candidate list shortens (⌈λL/w⌉ drops).

The paper reports n ≈ 150 signatures at δ = 0.7 with 100 queries
(≈ 30 KB); our scaled m is smaller, so absolute counts are smaller, but
both monotone trends must hold.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import dump_metrics_snapshot
from repro.config import DetectorConfig
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import run_detector

DELTA_SWEEP = (0.5, 0.6, 0.7, 0.8, 0.9)
WINDOW_SWEEP = (5.0, 10.0, 15.0, 20.0)


def test_fig10a_signatures_vs_delta(benchmark, vs2_prepared):
    def sweep():
        counts = []
        for delta in DELTA_SWEEP:
            result = run_detector(
                vs2_prepared, DetectorConfig(num_hashes=400, threshold=delta)
            )
            dump_metrics_snapshot(f"fig10a_delta{delta}", result.metrics)
            counts.append(result.stats.avg_signatures)
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["δ"] + [str(d) for d in DELTA_SWEEP],
            [["avg signatures"] + [f"{c:.1f}" for c in counts]],
            title="Figure 10(a): resident bit signatures vs δ (VS2, BitIndex-Seq)",
        )
    )
    print(format_series("avg_signatures", DELTA_SWEEP, counts))
    assert counts[-1] < counts[0], "higher δ must prune to fewer signatures"
    # Memory in bytes at 2K bits per signature, for the record.
    bytes_at_default = counts[2] * 2 * 400 / 8
    print(f"memory at δ=0.7: {bytes_at_default:.0f} bytes")


def test_fig10b_signatures_vs_window(benchmark, vs2_prepared):
    def sweep():
        counts = []
        for window_seconds in WINDOW_SWEEP:
            result = run_detector(
                vs2_prepared,
                DetectorConfig(num_hashes=400, window_seconds=window_seconds),
            )
            counts.append(result.stats.avg_signatures)
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["w (s)"] + [f"{w:g}" for w in WINDOW_SWEEP],
            [["avg signatures"] + [f"{c:.1f}" for c in counts]],
            title="Figure 10(b): resident bit signatures vs w (VS2, BitIndex-Seq)",
        )
    )
    print(format_series("avg_signatures", WINDOW_SWEEP, counts))
    assert counts[-1] < counts[0], "larger windows must reduce resident signatures"
