"""Serving scalability benchmark: throughput vs worker count.

Measures end-to-end stream throughput (key frames/second through
``DetectionService.run``) across a query sweep (16 / 64 / 256 queries),
worker counts 1 / 2 / 4 and the serial / thread / process backends,
against the single-process ``StreamingDetector`` + ``LiveMonitor``
baseline. Every configuration detects the same copies — shard
transparency is enforced by ``tests/test_serve_equivalence.py`` — so
the only variable here is wall-clock.

Each row also records:

* a **per-phase breakdown** from the merged cross-worker timers —
  front-end sketching (``phase.frontend``, service side, counted once)
  vs the workers' own window sketching (``phase.sketch``, summed over
  shards) vs candidate combine/prune/score work vs transport
  (backpressure-blocked seconds, shm/inline bytes);
* the measured **sketch replication factor**: worker-side sketch passes
  per stream chunk. The legacy self-sketching protocol pays ≈ one per
  worker per chunk (the stream-side work of the paper's Section IV is
  multiplied by the worker count); the sketch-once front end drives it
  to zero, which is the whole point of this PR's protocol.

The process backend is benchmarked under both protocols
(``sketch_once`` on and off) so the JSON shows the A/B directly.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_scaling.py [--quick]
    PYTHONPATH=src python benchmarks/bench_serve_scaling.py --gate

``--gate`` is the CI scaling check: on the full-size workload at the
largest query count, 4 process workers must beat 1 (soft threshold,
one retry — machine noise happens on shared runners); exit code 1
when they do not. On a single-core host the comparison is physically
meaningless (four processes time-slice one CPU), so the gate prints a
loud SKIP and exits 0 instead of failing spuriously.

Writes ``BENCH_SERVE.json`` at the repository root (override with
``--output``). Standalone CLI, not a pytest module; the rows feed
docs/serving.md and the CI serve-smoke / serve-scaling steps.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import QuerySet
from repro.minhash.family import MinHashFamily
from repro.serve import DetectionService

BENCH_SEED = 20080407  # ICDE 2008 in Cancún
KEYFRAMES_PER_SECOND = 2.0
WINDOW_SECONDS = 5.0
TEMPO_SCALE = 2.0
THRESHOLD = 0.7
CELL_ID_SPACE = 40_960  # 2 d u^d with d=5, u=4
QUERY_SECONDS = (40.0, 60.0)
CHUNK_WINDOWS = 8  # stream chunk = 8 basic windows
QUERY_SWEEP = (16, 64, 256)
GATE_RATIO = 1.0  # 4 workers must (softly) beat 1


def build_workload(rng: np.random.Generator, num_queries: int,
                   stream_frames: int):
    """Query cell-id sets and a chunked stream with embedded copies."""
    frames_min = int(QUERY_SECONDS[0] * KEYFRAMES_PER_SECOND)
    frames_max = int(QUERY_SECONDS[1] * KEYFRAMES_PER_SECOND)
    cell_ids: Dict[int, np.ndarray] = {}
    frame_counts: Dict[int, int] = {}
    for qid in range(num_queries):
        n = int(rng.integers(frames_min, frames_max + 1))
        cell_ids[qid] = rng.integers(0, CELL_ID_SPACE, size=n)
        frame_counts[qid] = n
    stream = rng.integers(0, CELL_ID_SPACE, size=stream_frames)
    for qid in (0, num_queries // 2):
        copy = np.asarray(cell_ids[qid])
        at = int(rng.integers(0, stream_frames - copy.size))
        stream[at : at + copy.size] = copy
    window_frames = max(1, round(WINDOW_SECONDS * KEYFRAMES_PER_SECOND))
    chunk_frames = CHUNK_WINDOWS * window_frames
    chunks = [
        stream[offset : offset + chunk_frames]
        for offset in range(0, stream_frames, chunk_frames)
    ]
    return cell_ids, frame_counts, chunks


def run_baseline(config, queries, chunks) -> Dict[str, object]:
    """Single-process reference: detector + live monitor, no service."""
    detector = StreamingDetector(config, queries, KEYFRAMES_PER_SECOND)
    monitor = LiveMonitor(detector)
    start = time.perf_counter()
    matches = []
    for chunk in chunks:
        matches.extend(monitor.push_cell_ids(chunk))
    matches.extend(monitor.flush())
    elapsed = time.perf_counter() - start
    frames = sum(len(chunk) for chunk in chunks)
    return {
        "matches": len(matches),
        "elapsed_s": elapsed,
        "frames_per_sec": frames / elapsed if elapsed > 0 else 0.0,
    }


def run_service(config, queries, chunks, workers, backend,
                sketch_once) -> Dict[str, object]:
    """One timed service pass (construction excluded, like the baseline).

    Returns throughput plus the merged per-phase / transport breakdown
    and the measured worker-side sketch replication factor.
    """
    service = DetectionService(
        config, queries, KEYFRAMES_PER_SECOND,
        num_workers=workers, backend=backend, sketch_once=sketch_once,
    )
    try:
        start = time.perf_counter()
        matches = service.run(chunks)
        elapsed = time.perf_counter() - start
        snapshot = service.metrics_snapshot()
    finally:
        service.close()
    frames = sum(len(chunk) for chunk in chunks)
    timers = snapshot["timers"]
    counters = snapshot["counters"]

    def seconds(name):
        return round(timers.get(name, {}).get("seconds", 0.0), 6)

    blocked = sum(
        entry["seconds"] for name, entry in timers.items()
        if name.startswith("serve.blocked.")
    )
    worker_sketch_calls = timers.get("phase.sketch", {}).get("calls", 0)
    return {
        "matches": len(matches),
        "elapsed_s": elapsed,
        "frames_per_sec": frames / elapsed if elapsed > 0 else 0.0,
        "phases": {
            "frontend_s": seconds("phase.frontend"),
            "worker_sketch_s": seconds("phase.sketch"),
            "combine_s": seconds("phase.combine"),
            "prune_s": seconds("phase.prune"),
            "probe_s": seconds("phase.probe"),
            "match_emit_s": seconds("phase.match_emit"),
        },
        "transport": {
            "kind": snapshot["serve"]["transport"],
            "batches": counters.get("serve.transport.batches", 0),
            "windows": counters.get("serve.transport.windows", 0),
            "shm_bytes": counters.get("serve.transport.shm_bytes", 0),
            "inline_bytes": counters.get("serve.transport.inline_bytes", 0),
            "shm_waits": counters.get("serve.transport.shm_waits", 0),
            "blocked_s": round(blocked, 6),
        },
        # Worker-side stream sketch passes per chunk: ≈ workers under
        # the legacy protocol, 0 under sketch-once (the front end pays
        # exactly one pass per batch instead, in phase.frontend).
        "sketch_replication": (
            round(worker_sketch_calls / len(chunks), 3) if chunks else 0.0
        ),
    }


def best_of(repeats, sample_fn):
    best = None
    for _ in range(repeats):
        sample = sample_fn()
        if best is None or sample["frames_per_sec"] > best["frames_per_sec"]:
            best = sample
    return best


def run_sweep(args, sweep, worker_counts, backends, repeats,
              stream_frames, num_hashes) -> List[Dict[str, object]]:
    results: List[Dict[str, object]] = []
    for num_queries in sweep:
        rng = np.random.default_rng(BENCH_SEED)
        cell_ids, frame_counts, chunks = build_workload(
            rng, num_queries, stream_frames
        )
        config = DetectorConfig(
            num_hashes=num_hashes,
            threshold=THRESHOLD,
            window_seconds=WINDOW_SECONDS,
            tempo_scale=TEMPO_SCALE,
        )
        family = MinHashFamily(num_hashes=num_hashes, seed=BENCH_SEED)

        def fresh_queries() -> QuerySet:
            # Detectors mutate their QuerySet on churn; rebuild per run.
            return QuerySet.from_cell_ids(cell_ids, frame_counts, family)

        baseline = best_of(
            repeats, lambda: run_baseline(config, fresh_queries(), chunks)
        )
        results.append({
            "backend": "baseline", "workers": 1,
            "num_queries": num_queries, "sketch_once": None, **baseline,
        })
        print(f"q={num_queries:<4d} {'baseline':>12s} w=1 "
              f"{baseline['frames_per_sec']:>10.1f} frames/s "
              f"({baseline['matches']} matches)")

        for backend, sketch_once in (
            [(b, True) for b in backends]
            + ([("process", False)] if "process" in backends else [])
        ):
            for workers in worker_counts:
                best = best_of(repeats, lambda: run_service(
                    config, fresh_queries(), chunks, workers, backend,
                    sketch_once,
                ))
                if best["matches"] != baseline["matches"]:
                    raise SystemExit(
                        f"{backend}/w={workers} found {best['matches']} "
                        f"matches, baseline {baseline['matches']} — "
                        "shard transparency violated"
                    )
                results.append({
                    "backend": backend, "workers": workers,
                    "num_queries": num_queries,
                    "sketch_once": sketch_once, **best,
                })
                label = backend if sketch_once else f"{backend}/selfsk"
                print(
                    f"q={num_queries:<4d} {label:>12s} w={workers} "
                    f"{best['frames_per_sec']:>10.1f} frames/s "
                    f"(x{best['frames_per_sec'] / baseline['frames_per_sec']:.2f}"
                    f" vs baseline, sketch-rep "
                    f"{best['sketch_replication']:.1f}, "
                    f"frontend {best['phases']['frontend_s']:.3f}s)"
                )
    return results


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_gate(stream_frames, num_hashes, num_queries) -> int:
    """CI check: 4 process workers must beat 1 at the largest sweep
    point. Soft threshold with one retry to ride out runner noise."""
    cores = available_cores()
    if cores < 2:
        print(
            f"gate: SKIP — only {cores} CPU core(s) available; "
            "multi-worker wall-clock cannot beat one worker on a "
            "single core (the scaling gate needs a multi-core runner)"
        )
        return 0
    rng = np.random.default_rng(BENCH_SEED)
    cell_ids, frame_counts, chunks = build_workload(
        rng, num_queries, stream_frames
    )
    config = DetectorConfig(
        num_hashes=num_hashes, threshold=THRESHOLD,
        window_seconds=WINDOW_SECONDS, tempo_scale=TEMPO_SCALE,
    )
    family = MinHashFamily(num_hashes=num_hashes, seed=BENCH_SEED)

    def attempt() -> float:
        rates = {}
        for workers in (1, 4):
            queries = QuerySet.from_cell_ids(cell_ids, frame_counts, family)
            sample = run_service(
                config, queries, chunks, workers, "process", True
            )
            rates[workers] = sample["frames_per_sec"]
            print(f"gate: process w={workers} "
                  f"{sample['frames_per_sec']:>10.1f} frames/s")
        return rates[4] / rates[1]

    for round_index in (1, 2):
        ratio = attempt()
        print(f"gate: attempt {round_index} ratio x{ratio:.2f} "
              f"(need > x{GATE_RATIO:.2f})")
        if ratio > GATE_RATIO:
            print("gate: PASS — sharding scales past one worker")
            return 0
        if round_index == 1:
            print("gate: below threshold, retrying once")
    print("gate: FAIL — 4 process workers did not beat 1")
    return 1


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small stream, short sweep, one repeat",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="CI scaling gate: quick workload, process backend only; "
        "exit 1 unless 4 workers beat 1 (one retry)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_SERVE.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per configuration (best is kept)",
    )
    args = parser.parse_args(argv)

    if args.gate:
        # Full-size workload: per-window query work must dominate IPC
        # for the worker-count comparison to measure anything real.
        return run_gate(4800, 400, max(QUERY_SWEEP))

    quick = args.quick
    stream_frames = 800 if quick else 4800
    num_hashes = 128 if quick else 400
    sweep = (16, 256) if quick else QUERY_SWEEP
    repeats = args.repeats or 1
    worker_counts = [1, 2] if quick else [1, 2, 4]
    backends = ["serial", "process"] if quick else [
        "serial", "thread", "process"
    ]

    results = run_sweep(
        args, sweep, worker_counts, backends, repeats,
        stream_frames, num_hashes,
    )
    report = {
        "benchmark": "serve_scaling",
        "seed": BENCH_SEED,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        # Wall-clock worker scaling is bounded by this: on a 1-core
        # host every multi-worker row necessarily trails 1 worker and
        # the scaling story lives in sketch_replication / phases.
        "cpu_cores": available_cores(),
        "workload": {
            "keyframes_per_second": KEYFRAMES_PER_SECOND,
            "window_seconds": WINDOW_SECONDS,
            "tempo_scale": TEMPO_SCALE,
            "threshold": THRESHOLD,
            "num_hashes": num_hashes,
            "query_sweep": list(sweep),
            "stream_frames": stream_frames,
            "chunk_windows": CHUNK_WINDOWS,
            "query_seconds": list(QUERY_SECONDS),
            "repeats": repeats,
        },
        "results": results,
    }
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
