"""Serving scalability benchmark: throughput vs worker count.

Measures end-to-end stream throughput (key frames/second through
``DetectionService.run``) as the query set is sharded across 1, 2 and 4
workers, for the serial, thread and process backends, against the
single-process ``StreamingDetector`` + ``LiveMonitor`` baseline. Every
configuration detects the same copies — shard transparency is enforced
by ``tests/test_serve_equivalence.py`` — so the only variable here is
wall-clock.

The workload is query-heavy on purpose (many long Sequential queries →
large per-window candidate×query work) because that is the regime query
sharding targets: per-worker cost scales with its shard's queries while
the stream cost replicates. Python's GIL means the thread backend mostly
measures orchestration overhead; the process backend is where real
speedups can appear once per-chunk work dominates IPC.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_scaling.py [--quick]

Writes ``BENCH_SERVE.json`` at the repository root (override with
``--output``). Standalone CLI, not a pytest module; the rows feed
docs/serving.md and the CI serve-smoke step.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import QuerySet
from repro.minhash.family import MinHashFamily
from repro.serve import DetectionService

BENCH_SEED = 20080407  # ICDE 2008 in Cancún
KEYFRAMES_PER_SECOND = 2.0
WINDOW_SECONDS = 5.0
TEMPO_SCALE = 2.0
THRESHOLD = 0.7
CELL_ID_SPACE = 40_960  # 2 d u^d with d=5, u=4
QUERY_SECONDS = (40.0, 60.0)
CHUNK_WINDOWS = 8  # stream chunk = 8 basic windows


def build_workload(rng: np.random.Generator, num_queries: int,
                   stream_frames: int):
    """Query cell-id sets and a chunked stream with embedded copies."""
    frames_min = int(QUERY_SECONDS[0] * KEYFRAMES_PER_SECOND)
    frames_max = int(QUERY_SECONDS[1] * KEYFRAMES_PER_SECOND)
    cell_ids: Dict[int, np.ndarray] = {}
    frame_counts: Dict[int, int] = {}
    for qid in range(num_queries):
        n = int(rng.integers(frames_min, frames_max + 1))
        cell_ids[qid] = rng.integers(0, CELL_ID_SPACE, size=n)
        frame_counts[qid] = n
    stream = rng.integers(0, CELL_ID_SPACE, size=stream_frames)
    for qid in (0, num_queries // 2):
        copy = np.asarray(cell_ids[qid])
        at = int(rng.integers(0, stream_frames - copy.size))
        stream[at : at + copy.size] = copy
    window_frames = max(1, round(WINDOW_SECONDS * KEYFRAMES_PER_SECOND))
    chunk_frames = CHUNK_WINDOWS * window_frames
    chunks = [
        stream[offset : offset + chunk_frames]
        for offset in range(0, stream_frames, chunk_frames)
    ]
    return cell_ids, frame_counts, chunks


def run_baseline(config, queries, chunks) -> Dict[str, object]:
    """Single-process reference: detector + live monitor, no service."""
    detector = StreamingDetector(config, queries, KEYFRAMES_PER_SECOND)
    monitor = LiveMonitor(detector)
    start = time.perf_counter()
    matches = []
    for chunk in chunks:
        matches.extend(monitor.push_cell_ids(chunk))
    matches.extend(monitor.flush())
    elapsed = time.perf_counter() - start
    frames = sum(len(chunk) for chunk in chunks)
    return {
        "matches": len(matches),
        "elapsed_s": elapsed,
        "frames_per_sec": frames / elapsed if elapsed > 0 else 0.0,
    }


def run_service(config, queries, chunks, workers, backend):
    """One timed service pass (construction excluded, like the baseline)."""
    service = DetectionService(
        config, queries, KEYFRAMES_PER_SECOND,
        num_workers=workers, backend=backend,
    )
    try:
        start = time.perf_counter()
        matches = service.run(chunks)
        elapsed = time.perf_counter() - start
    finally:
        service.close()
    frames = sum(len(chunk) for chunk in chunks)
    return {
        "matches": len(matches),
        "elapsed_s": elapsed,
        "frames_per_sec": frames / elapsed if elapsed > 0 else 0.0,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small stream, fewer queries, one repeat",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_SERVE.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per configuration (best is kept)",
    )
    args = parser.parse_args(argv)

    num_queries = 8 if args.quick else 32
    stream_frames = 800 if args.quick else 4800
    repeats = args.repeats or (1 if args.quick else 3)
    worker_counts = [1, 2] if args.quick else [1, 2, 4]
    backends = ["serial", "process"] if args.quick else [
        "serial", "thread", "process"
    ]

    rng = np.random.default_rng(BENCH_SEED)
    cell_ids, frame_counts, chunks = build_workload(
        rng, num_queries, stream_frames
    )
    config = DetectorConfig(
        num_hashes=128 if args.quick else 400,
        threshold=THRESHOLD,
        window_seconds=WINDOW_SECONDS,
        tempo_scale=TEMPO_SCALE,
    )
    family = MinHashFamily(num_hashes=config.num_hashes, seed=BENCH_SEED)

    def fresh_queries() -> QuerySet:
        # Detectors mutate their QuerySet on churn; benches rebuild it.
        return QuerySet.from_cell_ids(cell_ids, frame_counts, family)

    results: List[Dict[str, object]] = []
    baseline = None
    for _ in range(repeats):
        sample = run_baseline(config, fresh_queries(), chunks)
        if baseline is None or (
            sample["frames_per_sec"] > baseline["frames_per_sec"]
        ):
            baseline = sample
    results.append({"backend": "baseline", "workers": 1, **baseline})
    print(f"{'baseline':>8s} w=1 {baseline['frames_per_sec']:>10.1f} "
          f"frames/s ({baseline['matches']} matches)")

    for backend in backends:
        for workers in worker_counts:
            best = None
            for _ in range(repeats):
                sample = run_service(
                    config, fresh_queries(), chunks, workers, backend
                )
                if best is None or (
                    sample["frames_per_sec"] > best["frames_per_sec"]
                ):
                    best = sample
            if best["matches"] != baseline["matches"]:
                raise SystemExit(
                    f"{backend}/w={workers} found {best['matches']} "
                    f"matches, baseline {baseline['matches']} — shard "
                    "transparency violated"
                )
            results.append({"backend": backend, "workers": workers, **best})
            print(f"{backend:>8s} w={workers} "
                  f"{best['frames_per_sec']:>10.1f} frames/s "
                  f"(x{best['frames_per_sec'] / baseline['frames_per_sec']:.2f} "
                  "vs baseline)")

    report = {
        "benchmark": "serve_scaling",
        "seed": BENCH_SEED,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workload": {
            "keyframes_per_second": KEYFRAMES_PER_SECOND,
            "window_seconds": WINDOW_SECONDS,
            "tempo_scale": TEMPO_SCALE,
            "threshold": THRESHOLD,
            "num_hashes": config.num_hashes,
            "num_queries": num_queries,
            "stream_frames": stream_frames,
            "chunk_windows": CHUNK_WINDOWS,
            "query_seconds": list(QUERY_SECONDS),
            "repeats": repeats,
        },
        "results": results,
    }
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
