"""Figure 15 — the Warp baseline's precision/recall on reordered copies.

Paper protocol (Section VI-E): DTW matching with band width r on VS2,
sweeping the distance threshold for two values of r. Expected shape:
time warping absorbs the PAL re-timing but not the segment reordering
(warping paths are monotone), so — like Seq — no operating point reaches
high precision and recall simultaneously, while the Bit method
(Figure 13) does.
"""

from __future__ import annotations

import pytest

from repro.baselines.warp import WarpMatcher
from repro.evaluation.baseline_runner import run_baseline
from repro.evaluation.reporting import format_series, format_table

#: DTW narrows but does not restore the margin on VS2: aligned copies
#: sit around 0.46-0.58 against a ~0.54-0.61 background (the band
#: absorbs the PAL re-timing, not the reordering). The sweep spans both
#: tails.
THRESHOLDS = (0.35, 0.40, 0.45, 0.50, 0.55, 0.60)
BANDS = (2, 6)
WINDOW_FRAMES = 10  # 5 s at 2 key frames/s


def test_fig15_warp_quality(benchmark, vs2_ordinal):
    def sweep():
        results = {}
        for band in BANDS:
            precisions = []
            recalls = []
            for threshold in THRESHOLDS:
                result = run_baseline(
                    vs2_ordinal,
                    WarpMatcher(
                        distance_threshold=threshold,
                        band_width=band,
                        gap_frames=WINDOW_FRAMES,
                    ),
                    WINDOW_FRAMES,
                )
                precisions.append(result.quality.precision)
                recalls.append(result.quality.recall)
            results[band] = (precisions, recalls)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    rows = []
    for band, (precisions, recalls) in results.items():
        rows.append([f"r={band} precision"] + [f"{p:.3f}" for p in precisions])
        rows.append([f"r={band} recall"] + [f"{r:.3f}" for r in recalls])
    print(
        format_table(
            ["series"] + [f"t={t}" for t in THRESHOLDS],
            rows,
            title="Figure 15: Warp precision/recall vs threshold (VS2)",
        )
    )
    for band, (precisions, recalls) in results.items():
        print(format_series(f"precision r={band}", THRESHOLDS, precisions))
        print(format_series(f"recall r={band}", THRESHOLDS, recalls))

    # Warp beats Seq (it absorbs the re-timing) but reordering still
    # caps it well below the Bit method's operating point on the same
    # stream (Figure 13: precision 1.0 at recall >= 0.8). No Warp
    # threshold reaches that region.
    for band, (precisions, recalls) in results.items():
        for precision, recall in zip(precisions, recalls):
            assert not (precision >= 0.95 and recall >= 0.75), (
                f"Warp(r={band}) unexpectedly good: p={precision}, r={recall}"
            )
        best_f1 = max(
            (2 * p * r / (p + r) if p + r else 0.0)
            for p, r in zip(precisions, recalls)
        )
        assert best_f1 < 0.9, f"Warp(r={band}) best F1 {best_f1:.2f} too high"
