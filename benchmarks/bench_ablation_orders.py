"""Ablation — the Eq. (4) cost model of the two combination orders.

DESIGN.md E13: measure the number of combinations actually performed per
basic window and check them against the paper's cost model:

* Sequential: ``⌈λL/w⌉`` combinations per window (every live suffix is
  extended);
* Geometric: ``O(log ⌈λL/w⌉)`` combinations per window (carry merges
  plus suffix accumulations).

Run with the Sketch representation so that ``sketch_combines`` is the
C_comb counter of the model.
"""

from __future__ import annotations

import math

import pytest

from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import run_detector


def test_eq4_combination_counts(benchmark, vs1_prepared):
    def run():
        outcome = {}
        for order in CombinationOrder:
            config = DetectorConfig(
                num_hashes=200,
                order=order,
                representation=Representation.SKETCH,
            )
            result = run_detector(vs1_prepared, config)
            per_window = (
                result.stats.sketch_combines / result.stats.windows_processed
            )
            outcome[order] = (per_window, result.stats)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    sequential_rate, sequential_stats = outcome[CombinationOrder.SEQUENTIAL]
    geometric_rate, geometric_stats = outcome[CombinationOrder.GEOMETRIC]

    # Model parameters: the candidate cap is the maximum over queries.
    config = DetectorConfig(num_hashes=200)
    window_frames = 10
    max_query_frames = max(
        frames for frames in vs1_prepared.query_frames.values()
    )
    cap = math.ceil(config.tempo_scale * max_query_frames / window_frames)

    print()
    print(
        format_table(
            ["order", "combines/window", "model"],
            [
                ["sequential", f"{sequential_rate:.2f}", f"≈ {cap} (⌈λL/w⌉)"],
                [
                    "geometric",
                    f"{geometric_rate:.2f}",
                    f"≈ O(log {cap}) = {math.log2(cap):.1f}",
                ],
            ],
            title="Eq. (4) ablation: measured combinations per basic window",
        )
    )

    # Sequential: one combine per live suffix; the steady state has
    # cap-many suffixes (minus boundary effects).
    assert cap - 2 <= sequential_rate <= cap
    # Geometric: carry merges amortise to <= 2/window and suffix merges
    # to the ladder depth; both are O(log cap).
    assert geometric_rate <= 2 * (math.log2(cap) + 2)
    assert geometric_rate < sequential_rate / 2