"""Ablation — K-min-hash (the paper's sketch) vs bottom-k (KMV).

DESIGN.md's design-choice inventory: the paper picks a K-function
min-hash sketch over the single-function bottom-k alternative its own
references ([24], [25]) describe. This ablation quantifies what the
choice buys and costs at equal sketch size:

* estimator accuracy at equal storage (K values vs k values);
* sketching cost (K hash evaluations per element vs one);
* and — the deciding factor — only the K-function sketch aligns values
  by hash function, enabling the Section V bit signature at all.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.membership import jaccard_similarity
from repro.evaluation.reporting import format_table
from repro.minhash.bottomk import BottomKFamily
from repro.minhash.family import MinHashFamily

SKETCH_SIZES = (64, 128, 256, 512)
NUM_PAIRS = 40


def _sample_pairs(rng, num_pairs):
    """Set pairs with Jaccard spread over (0, 1)."""
    pairs = []
    for _ in range(num_pairs):
        size = int(rng.integers(40, 200))
        overlap = int(size * rng.uniform(0.1, 0.9))
        base = rng.choice(100_000, size=2 * size - overlap, replace=False)
        left = base[:size]
        right = base[size - overlap :]
        pairs.append((left, right))
    return pairs


def test_sketch_vs_bottomk(benchmark):
    rng = np.random.default_rng(20080407)
    pairs = _sample_pairs(rng, NUM_PAIRS)
    exact = [jaccard_similarity(a, b) for a, b in pairs]

    def sweep():
        rows = []
        for size in SKETCH_SIZES:
            minhash = MinHashFamily(num_hashes=size, seed=1)
            bottomk = BottomKFamily(k=size, seed=1)

            started = time.perf_counter()
            minhash_sketches = [
                (minhash.sketch(a), minhash.sketch(b)) for a, b in pairs
            ]
            minhash_build = time.perf_counter() - started

            started = time.perf_counter()
            bottomk_sketches = [
                (bottomk.sketch(a), bottomk.sketch(b)) for a, b in pairs
            ]
            bottomk_build = time.perf_counter() - started

            minhash_error = float(
                np.mean(
                    [
                        abs(sa.similarity(sb) - true)
                        for (sa, sb), true in zip(minhash_sketches, exact)
                    ]
                )
            )
            bottomk_error = float(
                np.mean(
                    [
                        abs(sa.similarity(sb) - true)
                        for (sa, sb), true in zip(bottomk_sketches, exact)
                    ]
                )
            )
            rows.append(
                [size, minhash_error, bottomk_error, minhash_build, bottomk_build]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["size", "minhash |err|", "bottom-k |err|",
             "minhash build (s)", "bottom-k build (s)"],
            rows,
            title="Sketch-choice ablation: K-min-hash vs bottom-k (KMV)",
        )
    )

    for size, minhash_error, bottomk_error, minhash_build, bottomk_build in rows:
        # Both are consistent estimators; error shrinks with size.
        assert minhash_error < 0.1
        assert bottomk_error < 0.1
    # Bottom-k builds faster overall (one hash function, not K); summed
    # across the sweep so millisecond-level timer noise at the smallest
    # size cannot flip the comparison.
    assert sum(row[4] for row in rows) < sum(row[3] for row in rows)
    # Error decreases as sketches grow, for both schemes.
    assert rows[-1][1] < rows[0][1]
    assert rows[-1][2] < rows[0][2]
