"""Ablation — the tempo-scaling bound λ.

The paper bounds candidate length by λL, citing [28] for "the optimal
tempo scaling parameter λ is no bigger than 2". This ablation makes the
trade-off concrete: a slow-motion republication (content re-timed to
1.6x length) needs candidates longer than the query to be covered —
λ = 1 cannot span it, λ = 2 can — while the candidate-list size (and
hence Sequential cost) grows linearly with λ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.query import QuerySet
from repro.evaluation.reporting import format_table
from repro.minhash.family import MinHashFamily

SLOWDOWN = 1.6  # republished at 1.6x duration
LAMBDAS = (1.0, 1.5, 2.0, 3.0)


def _workload(rng):
    """A query and a slow-motion copy of it inside filler."""
    query_ids = np.arange(1000, 1080)  # 80 key frames
    stretched = np.repeat(query_ids, 2)[: int(len(query_ids) * SLOWDOWN)]
    stream = np.concatenate(
        [
            rng.integers(100_000, 900_000, size=100),
            stretched,
            rng.integers(100_000, 900_000, size=100),
        ]
    )
    return query_ids, stream, 100, 100 + len(stretched)


def test_lambda_ablation(benchmark):
    rng = np.random.default_rng(20080407)
    query_ids, stream, begin, end = _workload(rng)

    def sweep():
        rows = []
        for tempo_scale in LAMBDAS:
            family = MinHashFamily(num_hashes=256, seed=1)
            queries = QuerySet.from_cell_ids(
                {0: query_ids}, {0: len(query_ids)}, family
            )
            config = DetectorConfig(
                num_hashes=256,
                threshold=0.7,
                window_seconds=10.0,
                tempo_scale=tempo_scale,
            )
            detector = StreamingDetector(config, queries, 1.0)
            matches = detector.process_cell_ids(stream)
            w = detector.window_frames
            covered = any(
                match.end_frame - match.start_frame
                >= SLOWDOWN * len(query_ids) - w
                and begin + w <= match.position_frame <= end + w
                for match in matches
            )
            detected = any(
                begin + w <= match.position_frame <= end + w
                for match in matches
            )
            rows.append(
                [
                    tempo_scale,
                    detector.context.global_max_windows,
                    detector.stats.candidates_maintained.maximum,
                    "yes" if detected else "no",
                    "yes" if covered else "no",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["λ", "cap (windows)", "max candidates", "detected",
             "fully covered"],
            rows,
            title=f"λ ablation: {SLOWDOWN}x slow-motion copy of an "
            f"80-frame query",
        )
    )

    by_lambda = {row[0]: row for row in rows}
    # The candidate cap (and the list the engine actually maintains)
    # grows linearly with λ — the cost side of the trade.
    assert by_lambda[2.0][1] == 2 * by_lambda[1.0][1]
    assert by_lambda[2.0][2] > by_lambda[1.0][2]
    # λ = 1 cannot span a 1.6x copy end to end; λ = 2 can.
    assert by_lambda[1.0][4] == "no"
    assert by_lambda[2.0][4] == "yes"
    # Raising λ past what the attack needs buys nothing.
    assert by_lambda[3.0][4] == "yes"
