"""Figure 12 — CPU time vs basic window size: Bit vs Seq vs Warp.

Paper protocol (Section VI-E): VS2 stream; all methods share the same
compressed-domain features; the Seq and Warp baselines slide a
query-length window with a gap of one basic window; Warp is run at two
band widths. Expected shape: Bit is the fastest at every window size;
Warp is the slowest and grows with its band width r.

Scaled analogue: the baselines' cost is linear in the number of
monitored queries m while Bit's is nearly flat (Figure 9), so the
comparison runs at monitor scale — m = 96 subscribed clips (6 of them
actually inserted) over a 10-minute stream.
"""

from __future__ import annotations

import pytest

from repro.baselines.seq import SeqMatcher
from repro.baselines.warp import WarpMatcher
from repro.config import DetectorConfig
from repro.evaluation.baseline_runner import OrdinalWorkload, run_baseline
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import PreparedWorkload, run_detector
from repro.video.synth import ClipSynthesizer
from repro.workloads.doctor import StreamDoctor
from repro.workloads.library import ClipLibrary

from benchmarks.conftest import BENCH_SEED

WINDOW_SWEEP = (5.0, 10.0, 15.0, 20.0)
WARP_BANDS = (2, 6)
NUM_MONITORS = 192
NUM_INSERTED = 3


@pytest.fixture(scope="module")
def fig12_workloads(bench_profile):
    """A 192-monitor workload over a 5-minute VS2 stream."""
    profile = bench_profile.replace(
        num_queries=NUM_MONITORS, stream_seconds=300.0
    )
    library = ClipLibrary(
        profile, ClipSynthesizer(seed=BENCH_SEED), seed=BENCH_SEED
    )
    stream = StreamDoctor(profile, seed=BENCH_SEED).build_vs2(
        library.subset(NUM_INSERTED), noise_sigma=2.0
    )
    prepared = PreparedWorkload.prepare(stream, library)
    ordinal = OrdinalWorkload.prepare(stream, library)
    return prepared, ordinal


def test_fig12_cpu_vs_window(benchmark, fig12_workloads, bench_profile):
    prepared, ordinal = fig12_workloads
    kf_rate = bench_profile.keyframes_per_second

    def sweep():
        results = {"Bit": [], "Seq": []}
        for band in WARP_BANDS:
            results[f"Warp(r={band})"] = []
        for window_seconds in WINDOW_SWEEP:
            window_frames = max(1, round(window_seconds * kf_rate))
            bit = run_detector(
                prepared,
                DetectorConfig(num_hashes=400, window_seconds=window_seconds),
            )
            results["Bit"].append(bit.cpu_seconds)
            seq = run_baseline(
                ordinal,
                SeqMatcher(distance_threshold=0.5, gap_frames=window_frames),
                window_frames,
            )
            results["Seq"].append(seq.cpu_seconds)
            for band in WARP_BANDS:
                warp = run_baseline(
                    ordinal,
                    WarpMatcher(
                        distance_threshold=0.5,
                        band_width=band,
                        gap_frames=window_frames,
                    ),
                    window_frames,
                )
                results[f"Warp(r={band})"].append(warp.cpu_seconds)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    rows = [[name] + [f"{t:.3f}" for t in times] for name, times in results.items()]
    print(
        format_table(
            ["method"] + [f"w={w:g}s" for w in WINDOW_SWEEP],
            rows,
            title=f"Figure 12: CPU seconds vs w (VS2, m={NUM_MONITORS})",
        )
    )
    for name, times in results.items():
        print(format_series(name, WINDOW_SWEEP, times))

    # Per-point comparisons only where the margin is an order of
    # magnitude (Warp); Bit-vs-Seq and the band-width effect are
    # asserted over the whole sweep to stay robust to timer noise.
    for position in range(len(WINDOW_SWEEP)):
        assert results["Bit"][position] < results["Warp(r=2)"][position]
        assert results["Seq"][position] < results["Warp(r=2)"][position]
    assert sum(results["Bit"]) < sum(results["Seq"]), (
        "Bit must be cheapest overall"
    )
    assert sum(results["Warp(r=6)"]) > sum(results["Warp(r=2)"]), (
        "Warp cost must grow with its band width"
    )
