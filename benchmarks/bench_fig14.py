"""Figure 14 — the Seq baseline's precision/recall on reordered copies.

Paper protocol (Section VI-E): Hampapur-style rigid sliding-window
matching on VS2, sweeping the frame-distance threshold. Expected shape:
tightening the threshold raises precision, but "before the precisions
reach 50%, the recalls of Seq fall below 30%" — rigid alignment cannot
survive segment reordering, so there is no threshold with both metrics
high.
"""

from __future__ import annotations

import pytest

from repro.baselines.seq import SeqMatcher
from repro.evaluation.baseline_runner import run_baseline
from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.reporting import format_series, format_table

#: The sweep spans the whole operating range: on VS2 the *aligned*
#: distance of a reordered copy sits around 0.53-0.67 — barely below the
#: background distance of unrelated content (~0.58-0.68). That collapse
#: of the margin is precisely the paper's point; thresholds below ~0.45
#: detect nothing, thresholds above ~0.55 accept background noise.
THRESHOLDS = (0.40, 0.45, 0.50, 0.55, 0.60, 0.65)
WINDOW_FRAMES = 10  # 5 s at 2 key frames/s


def test_fig14_seq_quality(benchmark, vs2_ordinal):
    def sweep():
        precisions = []
        recalls = []
        for threshold in THRESHOLDS:
            result = run_baseline(
                vs2_ordinal,
                SeqMatcher(
                    distance_threshold=threshold, gap_frames=WINDOW_FRAMES
                ),
                WINDOW_FRAMES,
            )
            precisions.append(result.quality.precision)
            recalls.append(result.quality.recall)
        return precisions, recalls

    precisions, recalls = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["metric"] + [f"t={t}" for t in THRESHOLDS],
            [
                ["precision"] + [f"{p:.3f}" for p in precisions],
                ["recall"] + [f"{r:.3f}" for r in recalls],
            ],
            title="Figure 14: Seq precision/recall vs distance threshold (VS2)",
        )
    )
    print(render_chart({"precision": precisions, "recall": recalls},
                       THRESHOLDS, title="Seq on VS2 vs threshold"))
    print(format_series("precision", THRESHOLDS, precisions))
    print(format_series("recall", THRESHOLDS, recalls))

    # The paper's damning observation: no operating point is good. At
    # every threshold, precision and recall are never both >= 0.5.
    for precision, recall in zip(precisions, recalls):
        assert not (precision >= 0.5 and recall >= 0.5), (
            f"Seq unexpectedly good: p={precision}, r={recall}"
        )
    # The loose end of the sweep must actually produce detections
    # (otherwise the trade-off curve is vacuous).
    assert recalls[-1] > 0.0 or precisions[-1] < 1.0
