"""Ablation — Lemma 2 pruning on vs off.

DESIGN.md E14: the pruning rule is claimed to cut memory (resident
signatures) and CPU while never losing a detection (soundness, proven in
the paper and re-proven as a property test in the suite). This ablation
measures all three on VS2 at the default configuration.
"""

from __future__ import annotations

import pytest

from repro.config import DetectorConfig
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import run_detector


def test_pruning_ablation(benchmark, vs2_prepared):
    def run():
        outcome = {}
        for prune in (True, False):
            config = DetectorConfig(
                num_hashes=400, prune=prune, use_index=False
            )
            outcome[prune] = run_detector(vs2_prepared, config)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    pruned = outcome[True]
    unpruned = outcome[False]

    print()
    print(
        format_table(
            ["variant", "cpu (s)", "avg signatures", "precision", "recall"],
            [
                [
                    "prune=on",
                    f"{pruned.cpu_seconds:.3f}",
                    f"{pruned.stats.avg_signatures:.1f}",
                    f"{pruned.quality.precision:.3f}",
                    f"{pruned.quality.recall:.3f}",
                ],
                [
                    "prune=off",
                    f"{unpruned.cpu_seconds:.3f}",
                    f"{unpruned.stats.avg_signatures:.1f}",
                    f"{unpruned.quality.precision:.3f}",
                    f"{unpruned.quality.recall:.3f}",
                ],
            ],
            title="Lemma 2 pruning ablation (VS2, BitNoIndex-Seq)",
        )
    )

    # Memory: pruning trims the resident signature population. The '<'
    # plane only fills up once a candidate's set outgrows the query's
    # (Lemma 2 is a *maturity* filter), so the reduction shows on the
    # long-lived candidates, not the fresh ones.
    assert pruned.stats.avg_signatures < unpruned.stats.avg_signatures * 0.85
    assert pruned.stats.signature_prunes > 0
    # Soundness: no detection quality is lost.
    assert pruned.quality.recall >= unpruned.quality.recall - 1e-9
    assert pruned.quality.precision >= unpruned.quality.precision - 1e-9
    # CPU: pruning pays for its popcount checks with fewer live
    # signatures; net cost must stay in the same ballpark.
    assert pruned.cpu_seconds < unpruned.cpu_seconds * 1.3