"""Shared workloads for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on a
scaled-down workload (see ``ScaleProfile`` in DESIGN.md §5). The streams
and their extracted cell-id / ordinal signatures are built once per
session here and shared across benchmark modules.

The scaled bench profile: a 25-minute stream (3000 key frames at 2 kf/s)
carrying 12 inserted clips of 25-60 s, versus the paper's 12-hour stream
with 200 clips of 30-300 s. Ratios the algorithms are sensitive to
(λ = 2, w = 5 s default, δ grid, query-length/window ratio) match the
paper's orders of magnitude.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.config import ScaleProfile
from repro.evaluation.baseline_runner import OrdinalWorkload
from repro.evaluation.runner import PreparedWorkload
from repro.video.synth import ClipSynthesizer
from repro.workloads.doctor import StreamDoctor
from repro.workloads.library import ClipLibrary

BENCH_SEED = 20080407  # ICDE 2008 in Cancún


def dump_metrics_snapshot(name: str, metrics: dict) -> "Path | None":
    """Write a run's ``repro.obs/1`` snapshot for offline analysis.

    Gated on ``$BENCH_METRICS_DIR`` so benchmark runs stay side-effect
    free by default; see docs/observability.md.
    """
    directory = os.environ.get("BENCH_METRICS_DIR")
    if not directory:
        return None
    path = Path(directory) / f"{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def bench_profile() -> ScaleProfile:
    """The session's scaled stand-in for the paper's Table I workload."""
    return ScaleProfile(
        keyframes_per_second=2.0,
        stream_seconds=1500.0,
        num_queries=12,
        query_min_seconds=25.0,
        query_max_seconds=60.0,
    )


@pytest.fixture(scope="session")
def bench_library(bench_profile) -> ClipLibrary:
    """The 12-clip query library."""
    return ClipLibrary(
        bench_profile, ClipSynthesizer(seed=BENCH_SEED), seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def vs1(bench_profile, bench_library):
    """VS1: originals spliced into base footage."""
    return StreamDoctor(bench_profile, seed=BENCH_SEED).build_vs1(bench_library)


@pytest.fixture(scope="session")
def vs2(bench_profile, bench_library):
    """VS2: attacked + reordered copies spliced into base footage."""
    return StreamDoctor(bench_profile, seed=BENCH_SEED).build_vs2(
        bench_library, noise_sigma=2.0
    )


@pytest.fixture(scope="session")
def vs1_prepared(vs1, bench_library) -> PreparedWorkload:
    """Cell-id streams of VS1 (default d=5, u=4 fingerprints)."""
    return PreparedWorkload.prepare(vs1, bench_library)


@pytest.fixture(scope="session")
def vs2_prepared(vs2, bench_library) -> PreparedWorkload:
    """Cell-id streams of VS2 (default d=5, u=4 fingerprints)."""
    return PreparedWorkload.prepare(vs2, bench_library)


@pytest.fixture(scope="session")
def vs2_ordinal(vs2, bench_library) -> OrdinalWorkload:
    """Ordinal rank signatures of VS2 for the Seq/Warp baselines."""
    return OrdinalWorkload.prepare(vs2, bench_library)
