"""Engine throughput benchmark: columnar kernels vs scalar reference.

Measures windows/second for both combination orders (Sequential,
Geometric) and both representations (sketch vectors, bit signatures)
across a K sweep, with the columnar (``vectorized=True``) and the scalar
reference (``vectorized=False``) engine implementations. Both paths
produce bit-identical matches and counters (see
``tests/test_engine_vectorized.py``); this benchmark quantifies the
wall-clock gap between them.

The workload keeps the paper's λ = 2 and ``w`` = 5 s and uses query
lengths of 40-60 s at 2 key frames/s, so each Sequential query maintains
``ceil(λL/w)`` = 16-24 live candidate suffixes — a columnar store of
at least 16 rows, the regime the vectorized kernels are built for.
Window sketching happens once, outside the timed region: the timer
covers only ``StreamingDetector.process_window``, i.e. the engine's
combine / prune / match phases.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--quick]

Writes ``BENCH_ENGINE.json`` at the repository root (override with
``--output``). This is a standalone CLI, not a pytest module: the
``bench_engine_*`` result rows feed docs/performance.md and the CI
smoke step, not the test suite.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.core.detector import StreamingDetector
from repro.core.query import QuerySet
from repro.minhash.family import MinHashFamily
from repro.minhash.windows import build_basic_windows

BENCH_SEED = 20080407  # ICDE 2008 in Cancún
KEYFRAMES_PER_SECOND = 2.0
WINDOW_SECONDS = 5.0
TEMPO_SCALE = 2.0
THRESHOLD = 0.7
NUM_QUERIES = 24
CELL_ID_SPACE = 40_960  # 2 d u^d with d=5, u=4
QUERY_SECONDS = (40.0, 60.0)  # ceil(λL/w) in [16, 24] candidates


def build_workload(rng: np.random.Generator, stream_frames: int):
    """Synthesize query cell-id sets and a stream with embedded copies."""
    frames_min = int(QUERY_SECONDS[0] * KEYFRAMES_PER_SECOND)
    frames_max = int(QUERY_SECONDS[1] * KEYFRAMES_PER_SECOND)
    cell_ids: Dict[int, np.ndarray] = {}
    frame_counts: Dict[int, int] = {}
    for qid in range(NUM_QUERIES):
        n = int(rng.integers(frames_min, frames_max + 1))
        cell_ids[qid] = rng.integers(0, CELL_ID_SPACE, size=n)
        frame_counts[qid] = n
    stream = rng.integers(0, CELL_ID_SPACE, size=stream_frames)
    # Splice two query copies in so the match path is exercised too.
    for qid in (0, NUM_QUERIES // 2):
        copy = np.asarray(cell_ids[qid])
        at = int(rng.integers(0, stream_frames - copy.size))
        stream[at : at + copy.size] = copy
    return cell_ids, frame_counts, stream


def run_once(
    config: DetectorConfig,
    queries: QuerySet,
    windows,
) -> Dict[str, float]:
    """One timed pass of the engine over pre-sketched windows."""
    detector = StreamingDetector(config, queries, KEYFRAMES_PER_SECOND)
    start = time.perf_counter()
    for window in windows:
        detector.process_window(window)
    elapsed = time.perf_counter() - start
    return {
        "windows": len(windows),
        "matches": len(detector.matches),
        "elapsed_s": elapsed,
        "windows_per_sec": len(windows) / elapsed if elapsed > 0 else 0.0,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: K=128 only, short stream, one repeat",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_ENGINE.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per configuration (best is kept)",
    )
    args = parser.parse_args(argv)

    k_sweep = [128] if args.quick else [128, 400, 800]
    stream_frames = 600 if args.quick else 2400
    repeats = args.repeats or (1 if args.quick else 3)

    rng = np.random.default_rng(BENCH_SEED)
    cell_ids, frame_counts, stream = build_workload(rng, stream_frames)

    results: List[Dict[str, object]] = []
    for num_hashes in k_sweep:
        family = MinHashFamily(num_hashes=num_hashes, seed=BENCH_SEED)
        queries = QuerySet.from_cell_ids(cell_ids, frame_counts, family)
        window_frames = max(
            1, round(WINDOW_SECONDS * KEYFRAMES_PER_SECOND)
        )
        windows = build_basic_windows(stream, window_frames, family)
        for order in CombinationOrder:
            for representation in Representation:
                for vectorized in (False, True):
                    config = DetectorConfig(
                        num_hashes=num_hashes,
                        threshold=THRESHOLD,
                        window_seconds=WINDOW_SECONDS,
                        tempo_scale=TEMPO_SCALE,
                        order=order,
                        representation=representation,
                        use_index=False,
                        vectorized=vectorized,
                    )
                    best = None
                    for _ in range(repeats):
                        sample = run_once(config, queries, windows)
                        if best is None or (
                            sample["windows_per_sec"]
                            > best["windows_per_sec"]
                        ):
                            best = sample
                    row: Dict[str, object] = {
                        "order": order.value,
                        "representation": representation.value,
                        "num_hashes": num_hashes,
                        "vectorized": vectorized,
                        **best,
                    }
                    results.append(row)
                    print(
                        f"{order.value:>10s}/{representation.value:<6s} "
                        f"K={num_hashes:<4d} "
                        f"{'columnar' if vectorized else 'reference':<9s} "
                        f"{best['windows_per_sec']:>10.1f} win/s "
                        f"({best['matches']} matches)"
                    )

    speedups: List[Dict[str, object]] = []
    for row in results:
        if not row["vectorized"]:
            continue
        ref = next(
            r
            for r in results
            if not r["vectorized"]
            and r["order"] == row["order"]
            and r["representation"] == row["representation"]
            and r["num_hashes"] == row["num_hashes"]
        )
        speedups.append(
            {
                "order": row["order"],
                "representation": row["representation"],
                "num_hashes": row["num_hashes"],
                "speedup": row["windows_per_sec"] / ref["windows_per_sec"],
            }
        )
    for entry in speedups:
        print(
            f"speedup {entry['order']:>10s}/{entry['representation']:<6s} "
            f"K={entry['num_hashes']:<4d} {entry['speedup']:.2f}x"
        )

    report = {
        "benchmark": "engine_throughput",
        "seed": BENCH_SEED,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workload": {
            "keyframes_per_second": KEYFRAMES_PER_SECOND,
            "window_seconds": WINDOW_SECONDS,
            "tempo_scale": TEMPO_SCALE,
            "threshold": THRESHOLD,
            "num_queries": NUM_QUERIES,
            "stream_frames": stream_frames,
            "query_seconds": list(QUERY_SECONDS),
            "repeats": repeats,
        },
        "results": results,
        "speedups": speedups,
    }
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
