"""Gateway overhead: the ``repro.wire/1`` socket path vs in-process.

The gateway promises that putting the detection service behind a TCP
socket costs protocol overhead only — framing, CRC, one credit-window
round trip — while the detection work itself is byte-identical. This
benchmark measures that promise on localhost:

* **in-process** — chunks fed straight into a
  :class:`~repro.serve.DetectionService` (thread backend), one
  ``run([chunk])`` per chunk, exactly as the gateway's service thread
  does it.
* **gateway** — the same chunks pushed by an
  :class:`~repro.gateway.IngestClient` through a
  :class:`~repro.gateway.GatewayServer` over 127.0.0.1, with a watcher
  attached consuming the match stream.

Reported per configuration: frames/s and MB/s through each path, the
per-frame and per-chunk overhead of the socket path, and the wire-level
counters (frames, bytes) from the gateway's own registry. The match
streams are asserted identical before any number is reported — a
benchmark of a wrong answer is worthless.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.config import DetectorConfig
from repro.core.query import QuerySet
from repro.gateway import GatewayServer, IngestClient, WatchClient
from repro.minhash.family import MinHashFamily
from repro.serve import DetectionService

BENCH_SEED = 20260808
CELL_SPACE = 4000
KEYFRAMES_PER_SECOND = 2.0
WINDOW_SECONDS = 2.5
THRESHOLD = 0.35
CHUNK_FRAMES = 10


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_workload(rng, num_queries: int, num_chunks: int):
    """Queries plus a chunked stream with planted full-length copies."""
    frames = {}
    cells = {}
    for qid in range(num_queries):
        n = int(rng.integers(20, 40))
        cells[qid] = rng.integers(0, CELL_SPACE, size=n)
        frames[qid] = n
    chunks = [
        rng.integers(0, CELL_SPACE, size=CHUNK_FRAMES).astype(np.int64)
        for _ in range(num_chunks)
    ]
    # Plant each query once, spread across the stream, aligned to
    # chunk boundaries so every run detects something.
    for qid in range(num_queries):
        at = (qid + 1) * num_chunks // (num_queries + 2)
        copy = np.asarray(cells[qid], dtype=np.int64)
        offset = 0
        while offset < copy.size and at < num_chunks:
            take = min(CHUNK_FRAMES, copy.size - offset)
            chunks[at][:take] = copy[offset : offset + take]
            offset += take
            at += 1
    return cells, frames, chunks


def _match_key(match):
    return (match.qid, match.window_index, match.start_frame,
            match.end_frame, match.similarity)


def _make_service(config, family, cells, frames):
    queries = QuerySet.from_cell_ids(cells, frames, family)
    return DetectionService(
        config,
        queries,
        KEYFRAMES_PER_SECOND,
        num_workers=2,
        backend="thread",
    )


def run_inprocess(config, family, cells, frames, chunks):
    service = _make_service(config, family, cells, frames)
    started = time.perf_counter()
    for chunk in chunks:
        service.run([chunk], flush=False)
    service.flush()
    elapsed = time.perf_counter() - started
    matches = [_match_key(m) for m in service.collector.matches]
    service.close()
    return elapsed, matches


def run_gateway(config, family, cells, frames, chunks, credits: int):
    service = _make_service(config, family, cells, frames)
    server = GatewayServer(service, credits=credits)
    handle = server.run_in_thread()
    watcher = WatchClient("127.0.0.1", handle.port, credits=1 << 16)
    client = IngestClient("127.0.0.1", handle.port)
    started = time.perf_counter()
    for seq, chunk in enumerate(chunks):
        client.push(seq, chunk)
    client.end()
    watched = list(watcher.matches())
    elapsed = time.perf_counter() - started
    matches = [
        (event["qid"], event["window_index"], event["start_frame"],
         event["end_frame"], event["similarity"])
        for event in watched
    ]
    counters = dict(server.registry.counters())
    client.close()
    watcher.close()
    handle.stop()
    service.close()
    return elapsed, matches, counters


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer chunks, fewer hashes, one repeat",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_GATEWAY.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per configuration (best is kept)",
    )
    args = parser.parse_args(argv)

    num_queries = 4 if args.quick else 8
    num_chunks = 150 if args.quick else 1200
    repeats = args.repeats or (1 if args.quick else 3)
    credits = 8

    config = DetectorConfig(
        num_hashes=64 if args.quick else 256,
        threshold=THRESHOLD,
        window_seconds=WINDOW_SECONDS,
    )
    family = MinHashFamily(num_hashes=config.num_hashes, seed=BENCH_SEED)
    rng = np.random.default_rng(BENCH_SEED)
    cells, frames, chunks = build_workload(rng, num_queries, num_chunks)
    num_frames = sum(chunk.size for chunk in chunks)
    payload_bytes = sum(chunk.nbytes for chunk in chunks)

    best_inproc = None
    best_gateway = None
    counters: Dict[str, int] = {}
    for _ in range(repeats):
        elapsed, ref_matches = run_inprocess(
            config, family, cells, frames, chunks
        )
        if best_inproc is None or elapsed < best_inproc:
            best_inproc = elapsed
        elapsed, gw_matches, counters = run_gateway(
            config, family, cells, frames, chunks, credits
        )
        if gw_matches != ref_matches:
            raise SystemExit(
                f"parity violation: gateway produced {len(gw_matches)} "
                f"matches, in-process {len(ref_matches)}"
            )
        if best_gateway is None or elapsed < best_gateway:
            best_gateway = elapsed

    overhead_s = best_gateway - best_inproc
    result = {
        "num_chunks": num_chunks,
        "num_frames": num_frames,
        "payload_mb": payload_bytes / 1e6,
        "matches": len(ref_matches),
        "inprocess": {
            "elapsed_s": best_inproc,
            "frames_per_sec": num_frames / best_inproc,
            "mb_per_sec": payload_bytes / 1e6 / best_inproc,
        },
        "gateway": {
            "elapsed_s": best_gateway,
            "frames_per_sec": num_frames / best_gateway,
            "mb_per_sec": payload_bytes / 1e6 / best_gateway,
            "wire_frames_in": counters.get("gateway.frames_in", 0),
            "wire_frames_out": counters.get("gateway.frames_out", 0),
            "wire_bytes_in": counters.get("gateway.bytes_in", 0),
            "wire_bytes_out": counters.get("gateway.bytes_out", 0),
        },
        "overhead": {
            "total_s": overhead_s,
            "per_chunk_us": overhead_s / num_chunks * 1e6,
            "per_frame_us": overhead_s / num_frames * 1e6,
            "relative": overhead_s / best_inproc,
        },
    }
    print(f"in-process: {result['inprocess']['frames_per_sec']:>10.1f} "
          f"frames/s  {result['inprocess']['mb_per_sec']:>7.2f} MB/s")
    print(f"gateway:    {result['gateway']['frames_per_sec']:>10.1f} "
          f"frames/s  {result['gateway']['mb_per_sec']:>7.2f} MB/s")
    print(f"overhead:   {result['overhead']['per_chunk_us']:>10.1f} "
          f"us/chunk  ({result['overhead']['relative']*100:.1f}% of "
          "in-process wall clock)")

    report = {
        "benchmark": "gateway",
        "seed": BENCH_SEED,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_cores": available_cores(),
        "config": {
            "num_hashes": config.num_hashes,
            "threshold": THRESHOLD,
            "window_seconds": WINDOW_SECONDS,
            "chunk_frames": CHUNK_FRAMES,
            "num_queries": num_queries,
            "credits": credits,
            "repeats": repeats,
            "backend": "thread",
            "num_workers": 2,
        },
        "result": result,
    }
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
