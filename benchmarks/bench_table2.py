"""Table II — precision/recall of the exact membership test over (u, d).

Paper protocol (Section VI-A): the 200 original clips A and their edited
versions B are compared clip-to-clip with the exact set-similarity
membership test (no min-hash); for each (u, d) the retrieval precision
and recall are reported. Expected shape: small (u, d) gives high recall /
low precision, large (u, d) the reverse, with a usable sweet spot around
the paper's chosen (u=4, d=5).
"""

from __future__ import annotations

import pytest

from repro.baselines.membership import MembershipMatcher
from repro.config import FingerprintConfig
from repro.evaluation.reporting import format_table
from repro.features.pipeline import FingerprintExtractor
from repro.video.edits import EditPipeline
from repro.video.formats import NTSC, PAL, VideoFormat
from repro.video.reorder import reorder_segments

from benchmarks.conftest import BENCH_SEED

U_RANGE = (2, 3, 4, 5, 6, 7)
D_RANGE = (3, 4, 5, 6, 7)
#: Retrieval threshold, calibrated so that coarse partitions produce the
#: paper's false-positive collisions at this library size (40 clips vs
#: the paper's 200; fewer clips means fewer collision opportunities, so
#: the threshold sits lower than the streaming δ).
RETRIEVAL_THRESHOLD = 0.35


def _edited_collection(library, kf_rate):
    """B: the attacked + reordered versions of every library clip."""
    pipeline = EditPipeline(
        target_format=VideoFormat(
            name="PAL-kf",
            width=PAL.width,
            height=PAL.height,
            fps=kf_rate * PAL.fps / NTSC.fps,
        ),
        noise_sigma=4.0,
        seed=BENCH_SEED,
    )
    edited = {}
    for qid, clip in library:
        attacked = pipeline.apply(clip)
        attacked, _perm = reorder_segments(attacked, 5, seed=BENCH_SEED + qid)
        edited[qid] = attacked
    return edited


@pytest.fixture(scope="module")
def table2_library():
    """A larger clip population than the stream benches use — Table II is
    a clip-to-clip retrieval study, so no stream needs to be built and 40
    clips stay cheap."""
    from repro.config import ScaleProfile
    from repro.video.synth import ClipSynthesizer
    from repro.workloads.library import ClipLibrary

    profile = ScaleProfile(
        stream_seconds=1.0,
        num_queries=40,
        query_min_seconds=15.0,
        query_max_seconds=30.0,
    )
    return ClipLibrary(profile, ClipSynthesizer(seed=BENCH_SEED), seed=BENCH_SEED)


def test_table2_partition_grid(benchmark, table2_library, bench_profile):
    bench_library = table2_library
    edited = _edited_collection(bench_library, bench_profile.keyframes_per_second)
    matcher = MembershipMatcher(threshold=RETRIEVAL_THRESHOLD)

    def sweep():
        rows = []
        for d in D_RANGE:
            row = [d]
            for u in U_RANGE:
                extractor = FingerprintExtractor(config=FingerprintConfig(d=d, u=u))
                queries = {
                    qid: extractor.cell_ids_from_clip(clip)
                    for qid, clip in bench_library
                }
                collection = {
                    qid: extractor.cell_ids_from_clip(clip)
                    for qid, clip in edited.items()
                }
                precision, recall = matcher.retrieval_quality(queries, collection)
                row.append(f"{precision:.2f}/{recall:.2f}")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["d \\ u"] + [f"u={u} (p/r)" for u in U_RANGE]
    print()
    print(format_table(headers, rows, title="Table II: precision/recall per (u, d)"))

    table = {
        (d_row[0], u): tuple(float(x) for x in d_row[i + 1].split("/"))
        for d_row in rows
        for i, u in enumerate(U_RANGE)
    }
    # Shape assertions from the paper: recall falls and precision rises
    # as the partition gets finer along both axes.
    assert table[(3, 2)][1] >= table[(7, 7)][1], "recall must fall with finer cells"
    assert table[(7, 7)][0] >= table[(3, 2)][0], "precision must rise with finer cells"
    p_default, r_default = table[(5, 4)]
    assert p_default >= 0.9 and r_default >= 0.7, "sweet spot around (u=4, d=5)"
