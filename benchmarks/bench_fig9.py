"""Figure 9 — CPU time vs number of continuous queries m.

Paper protocol (Section VI-C): four methods (Sketch/Bit x Index/NoIndex)
under both orders, m from 10 to 200. Expected shape: the NoIndex methods
grow roughly linearly in m (every query is compared at every window); the
Index methods stay nearly flat (a probe touches only related queries).

Scaled analogue: m from 6 to 48 query clips; only the first 12 are
actually inserted into the stream (extra queries monitor without ever
matching — exactly the regime the index exploits).
"""

from __future__ import annotations

import pytest

from repro.config import CombinationOrder, DetectorConfig, Representation, ScaleProfile
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import PreparedWorkload, run_detector
from repro.video.synth import ClipSynthesizer
from repro.workloads.doctor import StreamDoctor
from repro.workloads.library import ClipLibrary

from benchmarks.conftest import BENCH_SEED

M_SWEEP = (6, 12, 24, 48)
NUM_INSERTED = 12

METHODS = [
    ("SketchIndex", Representation.SKETCH, True),
    ("SketchNoIndex", Representation.SKETCH, False),
    ("BitIndex", Representation.BIT, True),
    ("BitNoIndex", Representation.BIT, False),
]


@pytest.fixture(scope="module")
def fig9_prepared(bench_profile):
    """A 48-query library whose first 12 clips are inserted into VS1."""
    profile = bench_profile.replace(num_queries=max(M_SWEEP))
    library = ClipLibrary(
        profile, ClipSynthesizer(seed=BENCH_SEED), seed=BENCH_SEED
    )
    stream = StreamDoctor(profile, seed=BENCH_SEED).build_vs1(
        library.subset(NUM_INSERTED)
    )
    return PreparedWorkload.prepare(stream, library)


@pytest.mark.parametrize("order", list(CombinationOrder))
def test_fig9_cpu_vs_m(benchmark, fig9_prepared, order):
    def sweep():
        # Warm caches (numpy, allocator, fixture pages) so the first
        # measured configuration is not inflated by cold-start costs.
        run_detector(
            fig9_prepared.subset_queries(M_SWEEP[0]),
            DetectorConfig(num_hashes=400, order=order),
        )
        results = {}
        for name, representation, use_index in METHODS:
            times = []
            for num_queries in M_SWEEP:
                subset = fig9_prepared.subset_queries(num_queries)
                config = DetectorConfig(
                    num_hashes=400,
                    representation=representation,
                    use_index=use_index,
                    order=order,
                )
                times.append(run_detector(subset, config).cpu_seconds)
            results[name] = times
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    rows = [[name] + [f"{t:.3f}" for t in times] for name, times in results.items()]
    print(
        format_table(
            ["method"] + [f"m={m}" for m in M_SWEEP],
            rows,
            title=f"Figure 9 ({order.value}): CPU seconds vs m (VS1)",
        )
    )
    for name, times in results.items():
        print(format_series(f"{name}-{order.value}", M_SWEEP, times))

    # Shape assertions bind on the Sequential order, where candidate
    # maintenance dominates (the paper's default); the Geometric ladder
    # is so cheap at this scale that the probe's fixed overhead hides
    # the m-dependence, so its table is reported unasserted.
    if order is CombinationOrder.SEQUENTIAL:
        for representation in ("Sketch", "Bit"):
            indexed = results[f"{representation}Index"]
            unindexed = results[f"{representation}NoIndex"]
            grew_indexed = indexed[-1] - indexed[0]
            grew_unindexed = unindexed[-1] - unindexed[0]
            assert grew_unindexed > grew_indexed, (
                f"{representation}: NoIndex +{grew_unindexed:.3f}s should "
                f"exceed Index +{grew_indexed:.3f}s over the m sweep"
            )
        # At the largest m the indexed variant beats its unindexed twin.
        assert results["BitIndex"][-1] < results["BitNoIndex"][-1]
        assert results["SketchIndex"][-1] < results["SketchNoIndex"][-1]
