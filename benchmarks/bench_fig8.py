"""Figure 8 — recall vs K for δ ∈ {0.5, 0.7, 0.9} (Bit, both orders).

Paper protocol (Section VI-B): as Figure 7, measuring recall. Expected
shape: recall holds steady or decreases as K grows (small K lets noisy
estimates clear the threshold; large K tightens the estimate), and at
high δ the Geometric order recalls no more than the Sequential order
(skipped alignments cost it matches).
"""

from __future__ import annotations

import pytest

from repro.config import CombinationOrder
from repro.evaluation.reporting import format_series, format_table

from benchmarks.bench_fig7 import DELTAS, K_SWEEP, sweep_quality


def test_fig8_recall_vs_k(benchmark, vs1_prepared):
    results = benchmark.pedantic(
        sweep_quality, args=(vs1_prepared, "recall"), rounds=1, iterations=1
    )
    print()
    rows = [
        [f"δ={delta} {order.value[:3]}"] + [f"{v:.3f}" for v in series]
        for (delta, order), series in results.items()
    ]
    print(
        format_table(
            ["series"] + [f"K={k}" for k in K_SWEEP],
            rows,
            title="Figure 8: recall vs K (VS1, Bit)",
        )
    )
    for (delta, order), series in results.items():
        print(format_series(f"recall d={delta} {order.value}", K_SWEEP, series))

    for delta in DELTAS:
        sequential = results[(delta, CombinationOrder.SEQUENTIAL)]
        geometric = results[(delta, CombinationOrder.GEOMETRIC)]
        # Recall does not *increase* appreciably with K.
        assert sequential[-1] <= sequential[0] + 0.10, (delta, sequential)
        # Geometric recall never exceeds Sequential recall at the same δ.
        for seq_value, geo_value in zip(sequential, geometric):
            assert geo_value <= seq_value + 1e-9, (delta, sequential, geometric)
    # Sequential VS1 recall stays perfect at saturated K.
    assert results[(0.7, CombinationOrder.SEQUENTIAL)][-1] == 1.0
