"""Archive benchmark: tap overhead, backfill probe rate, seal/recover.

Measures what the sketch archive costs the live pipeline and what it
buys a late subscriber:

* **live throughput A/B** — key frames/second through
  ``DetectionService.run`` with archiving off vs. on (directory-backed,
  segments sealing as the stream advances). The archive tap reuses the
  sketches the frontend already computed, so the delta is bookkeeping
  plus npz serialisation; the bench asserts the degradation stays
  under 10 %.
* **backfill probe throughput** — archived windows probed per second
  when a late query subscribes with deep backfill and the service
  drains the job synchronously (the same columnar kernels as the live
  path, fed from the ring + sealed segments).
* **seal / recover latency** — wall-clock to append-and-seal a stream
  into segments, and to re-open the directory afterwards (catalogue
  scan + CRC spot checks on the torn-tail sweep).
* **memory bound under spill** — after streaming many windows through
  a directory-backed archive, the in-memory ring must hold fewer than
  two segments' worth of windows; everything older lives on disk.

Usage::

    PYTHONPATH=src python benchmarks/bench_archive.py [--quick]

Writes ``BENCH_ARCHIVE.json`` at the repository root (override with
``--output``). Standalone CLI, not a pytest module; the rows feed
docs/archive.md and the CI archive-smoke step.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.archive import SketchArchive
from repro.config import DetectorConfig
from repro.core.query import Query, QuerySet
from repro.minhash.family import MinHashFamily
from repro.serve import DetectionService

BENCH_SEED = 20080407  # ICDE 2008 in Cancún
KEYFRAMES_PER_SECOND = 2.0
WINDOW_SECONDS = 5.0
THRESHOLD = 0.5
CELL_ID_SPACE = 40_960
QUERY_SECONDS = (40.0, 60.0)
CHUNK_WINDOWS = 8
LATE_QID = 10_000
MAX_DEGRADATION_PCT = 10.0


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_workload(rng: np.random.Generator, num_queries: int,
                   stream_frames: int):
    """Resident query cells, one late query, and the chunked stream."""
    frames_min = int(QUERY_SECONDS[0] * KEYFRAMES_PER_SECOND)
    frames_max = int(QUERY_SECONDS[1] * KEYFRAMES_PER_SECOND)
    cell_ids: Dict[int, np.ndarray] = {}
    frame_counts: Dict[int, int] = {}
    for qid in range(num_queries):
        n = int(rng.integers(frames_min, frames_max + 1))
        cell_ids[qid] = rng.integers(0, CELL_ID_SPACE, size=n)
        frame_counts[qid] = n
    late_frames = frames_min
    late_cells = rng.integers(0, CELL_ID_SPACE, size=late_frames)
    stream = rng.integers(0, CELL_ID_SPACE, size=stream_frames)
    for copy in (np.asarray(cell_ids[0]), late_cells):
        at = int(rng.integers(0, stream_frames - copy.size))
        stream[at : at + copy.size] = copy
    window_frames = max(1, round(WINDOW_SECONDS * KEYFRAMES_PER_SECOND))
    chunk_frames = CHUNK_WINDOWS * window_frames
    chunks = [
        stream[offset : offset + chunk_frames]
        for offset in range(0, stream_frames, chunk_frames)
    ]
    return cell_ids, frame_counts, late_cells, late_frames, chunks


def make_service(config, family, cell_ids, frame_counts, archive=None):
    return DetectionService(
        config,
        QuerySet.from_cell_ids(cell_ids, frame_counts, family),
        KEYFRAMES_PER_SECOND,
        num_workers=1,
        archive=archive,
        backfill_async=False,
    )


def timed_stream(service, chunks):
    start = time.perf_counter()
    service.run(chunks, flush=False)
    return time.perf_counter() - start


def bench_live_ab(config, family, cell_ids, frame_counts, chunks,
                  segment_windows, repeats, scratch):
    """Best-of-``repeats`` frames/s with archiving off, then on."""
    frames = sum(len(chunk) for chunk in chunks)
    # Untimed warm-up: first-touch costs (zipfile import, npz codec)
    # land on the archive side otherwise and skew the A/B.
    warm = SketchArchive(
        family.fingerprint, config.num_hashes,
        directory=Path(scratch) / "ab-warm",
        segment_windows=8,  # tiny: force a real seal during warm-up
    )
    service = make_service(
        config, family, cell_ids, frame_counts, archive=warm
    )
    try:
        service.run(chunks[:2], flush=True)
    finally:
        service.close()

    best_off = best_on = 0.0
    matches_off = matches_on = None
    for attempt in range(repeats):
        service = make_service(config, family, cell_ids, frame_counts)
        try:
            elapsed = timed_stream(service, chunks)
            service.flush()
            matches_off = len(service.matches)
        finally:
            service.close()
        best_off = max(best_off, frames / elapsed)

        archive = SketchArchive(
            family.fingerprint, config.num_hashes,
            directory=Path(scratch) / f"ab-{attempt}",
            segment_windows=segment_windows,
        )
        service = make_service(
            config, family, cell_ids, frame_counts, archive=archive
        )
        try:
            elapsed = timed_stream(service, chunks)
            service.flush()
            matches_on = len(service.matches)
        finally:
            service.close()
        best_on = max(best_on, frames / elapsed)
    if matches_on != matches_off:
        raise SystemExit(
            f"archiving changed the live match stream: "
            f"{matches_on} vs {matches_off}"
        )
    degradation = 100.0 * (1.0 - best_on / best_off) if best_off else 0.0
    return {
        "frames_per_sec_off": best_off,
        "frames_per_sec_on": best_on,
        "degradation_pct": degradation,
        "matches": matches_off,
    }


def bench_backfill(config, family, cell_ids, frame_counts, late_cells,
                   late_frames, chunks, segment_windows, scratch):
    """Windows/s probed by a deep synchronous backfill drain."""
    archive = SketchArchive(
        family.fingerprint, config.num_hashes,
        directory=Path(scratch) / "probe",
        segment_windows=segment_windows,
    )
    service = make_service(
        config, family, cell_ids, frame_counts, archive=archive
    )
    try:
        service.run(chunks, flush=False)
        distinct = np.unique(np.asarray(late_cells, dtype=np.int64))
        late = Query(qid=LATE_QID, cell_ids=distinct,
                     num_frames=late_frames,
                     sketch=family.sketch(distinct))
        service.subscribe(late, backfill=10**9)
        service.flush()  # close the shadow horizon at the watermark
        start = time.perf_counter()
        if not service.drain_backfill():
            raise SystemExit("backfill drain did not complete")
        elapsed = time.perf_counter() - start
        total, done, found = service.backfill_progress()[LATE_QID]
    finally:
        service.close()
    return {
        "windows_probed": done,
        "probe_windows_per_sec": done / elapsed if elapsed > 0 else 0.0,
        "retro_matches": found,
        "drain_seconds": elapsed,
    }


def bench_seal_recover(num_hashes, num_windows, segment_windows,
                       scratch):
    """Append-and-seal a synthetic stream, then re-open the directory."""
    rng = np.random.default_rng(BENCH_SEED)
    fingerprint = MinHashFamily(
        num_hashes=num_hashes, seed=BENCH_SEED
    ).fingerprint
    directory = Path(scratch) / "seal"
    archive = SketchArchive(
        fingerprint, num_hashes,
        directory=directory, segment_windows=segment_windows,
    )
    window_frames = max(1, round(WINDOW_SECONDS * KEYFRAMES_PER_SECOND))
    batch = CHUNK_WINDOWS
    start = time.perf_counter()
    for first in range(0, num_windows, batch):
        count = min(batch, num_windows - first)
        indices = np.arange(first, first + count, dtype=np.int64)
        archive.append(
            indices,
            indices * window_frames,
            np.full(count, window_frames, dtype=np.int64),
            rng.integers(0, 2**62, size=(count, num_hashes),
                         dtype=np.int64),
        )
    archive.seal_open_run()
    seal_elapsed = time.perf_counter() - start
    ring_after = archive.ring_windows
    bytes_on_disk = archive.bytes_on_disk()

    start = time.perf_counter()
    revived = SketchArchive(
        fingerprint, num_hashes,
        directory=directory, segment_windows=segment_windows,
    )
    recover_elapsed = time.perf_counter() - start
    if revived.next_index != num_windows:
        raise SystemExit(
            f"recovery lost windows: watermark {revived.next_index} "
            f"after sealing {num_windows}"
        )
    return {
        "windows_sealed": num_windows,
        "seal_windows_per_sec": (
            num_windows / seal_elapsed if seal_elapsed > 0 else 0.0
        ),
        "recover_seconds": recover_elapsed,
        "bytes_on_disk": bytes_on_disk,
        "ring_windows_after_spill": ring_after,
        "ring_bytes_resident": ring_after * num_hashes * 8,
        "memory_bounded": ring_after < 2 * segment_windows,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small stream, one repeat",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_ARCHIVE.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats for the live A/B (best throughput kept)",
    )
    args = parser.parse_args(argv)

    num_queries = 8 if args.quick else 32
    stream_frames = 2400 if args.quick else 6400
    seal_windows = 512 if args.quick else 4096
    segment_windows = 64
    repeats = args.repeats or (3 if args.quick else 4)

    config = DetectorConfig(
        num_hashes=128 if args.quick else 256,
        threshold=THRESHOLD,
        window_seconds=WINDOW_SECONDS,
    )
    family = MinHashFamily(num_hashes=config.num_hashes, seed=BENCH_SEED)
    rng = np.random.default_rng(BENCH_SEED)
    cell_ids, frame_counts, late_cells, late_frames, chunks = (
        build_workload(rng, num_queries, stream_frames)
    )

    with tempfile.TemporaryDirectory() as scratch:
        live = bench_live_ab(
            config, family, cell_ids, frame_counts, chunks,
            segment_windows, repeats, scratch,
        )
        print(f"live A/B: off {live['frames_per_sec_off']:.1f} f/s, "
              f"on {live['frames_per_sec_on']:.1f} f/s "
              f"({live['degradation_pct']:+.1f}% slower, "
              f"{live['matches']} matches)")
        if live["degradation_pct"] > MAX_DEGRADATION_PCT:
            # One retry: shared runners are noisy and the A/B compares
            # two separate passes over the same chunks.
            live = bench_live_ab(
                config, family, cell_ids, frame_counts, chunks,
                segment_windows, repeats, scratch,
            )
            print(f"live A/B retry: "
                  f"{live['degradation_pct']:+.1f}% slower")
            if live["degradation_pct"] > MAX_DEGRADATION_PCT:
                raise SystemExit(
                    f"archive tap degrades live throughput by "
                    f"{live['degradation_pct']:.1f}% "
                    f"(> {MAX_DEGRADATION_PCT}%)"
                )

        probe = bench_backfill(
            config, family, cell_ids, frame_counts, late_cells,
            late_frames, chunks, segment_windows, scratch,
        )
        print(f"backfill: {probe['windows_probed']} windows in "
              f"{probe['drain_seconds']:.3f}s "
              f"({probe['probe_windows_per_sec']:.1f} windows/s, "
              f"{probe['retro_matches']} retro matches)")

        seal = bench_seal_recover(
            config.num_hashes, seal_windows, segment_windows, scratch,
        )
        print(f"seal: {seal['windows_sealed']} windows at "
              f"{seal['seal_windows_per_sec']:.1f} windows/s, "
              f"recover {seal['recover_seconds']*1e3:.1f} ms, "
              f"ring holds {seal['ring_windows_after_spill']} windows "
              f"({seal['bytes_on_disk']} bytes on disk)")
        if not seal["memory_bounded"]:
            raise SystemExit(
                f"ring grew to {seal['ring_windows_after_spill']} "
                f"windows with segment_windows={segment_windows} — "
                f"spill is not bounding memory"
            )

    report = {
        "benchmark": "archive",
        "seed": BENCH_SEED,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_cores": available_cores(),
        "workload": {
            "keyframes_per_second": KEYFRAMES_PER_SECOND,
            "window_seconds": WINDOW_SECONDS,
            "threshold": THRESHOLD,
            "num_hashes": config.num_hashes,
            "num_queries": num_queries,
            "stream_frames": stream_frames,
            "chunk_windows": CHUNK_WINDOWS,
            "segment_windows": segment_windows,
            "seal_windows": seal_windows,
            "repeats": repeats,
        },
        "live_ab": live,
        "backfill": probe,
        "seal_recover": seal,
    }
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
