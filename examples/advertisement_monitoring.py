#!/usr/bin/env python
"""Advertisement airing verification — the paper's motivating use case.

An advertising agency pays for three prime-time slots and wants
independent verification that each spot aired, intact and on time
(Section I: "advertising agencies would like to ensure that their
advertisements have been broadcasted on the prime time slot they pay
for and without tamper").

This example builds a "broadcast day", splices the three ads in — one of
them maliciously shortened by the broadcaster — and runs a streaming
detector that is fed the broadcast chunk by chunk, as a live monitor
would be. Afterwards it reconciles detections against the booked slots,
demonstrating mid-stream query subscription along the way.

Run:  python examples/advertisement_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ClipSynthesizer,
    DetectorConfig,
    FingerprintExtractor,
    MinHashFamily,
    Query,
    QuerySet,
    StreamingDetector,
    VideoClip,
    merge_matches,
)
from repro.video.clip import concat_clips

KF_RATE = 2.0  # key frames per second
AD_SECONDS = 30.0
BOOKED_SLOTS_SECONDS = [120.0, 420.0, 700.0]  # contracted airing times


def build_broadcast(synth: ClipSynthesizer, ads: dict) -> tuple:
    """Assemble a broadcast: programming with ads at the booked slots.

    Ad 2 is tampered: the broadcaster airs only its first half.
    """
    pieces = []
    aired = {}
    cursor_seconds = 0.0
    for slot_index, slot_seconds in enumerate(BOOKED_SLOTS_SECONDS):
        gap = slot_seconds - cursor_seconds
        pieces.append(
            synth.generate_clip(gap, label=f"programming-{slot_index}", fps=KF_RATE)
        )
        ad = ads[slot_index]
        if slot_index == 2:  # tamper: air only the first half
            ad = ad.subclip(0, ad.num_frames // 2)
        pieces.append(ad)
        aired[slot_index] = (slot_seconds, slot_seconds + ad.duration)
        cursor_seconds = slot_seconds + ad.duration
    pieces.append(
        synth.generate_clip(120.0, label="programming-tail", fps=KF_RATE)
    )
    return concat_clips(pieces, label="broadcast"), aired


def main() -> None:
    synth = ClipSynthesizer(seed=7)
    ads = {
        i: synth.generate_clip(AD_SECONDS, label=f"ad-{i}", fps=KF_RATE)
        for i in range(3)
    }
    broadcast, aired = build_broadcast(synth, ads)
    print(f"Broadcast: {broadcast.duration:.0f}s, booked slots at "
          f"{[f'{s:.0f}s' for s in BOOKED_SLOTS_SECONDS]}")

    extractor = FingerprintExtractor()
    family = MinHashFamily(num_hashes=400, seed=0)

    # Subscribe ads 0 and 1 up front; ad 2's subscription arrives while
    # the stream is already being monitored (online index maintenance).
    def make_query(ad_id: int) -> Query:
        ids = extractor.cell_ids_from_clip(ads[ad_id])
        return Query(
            qid=ad_id,
            cell_ids=np.unique(ids),
            num_frames=ads[ad_id].num_frames,
            sketch=family.sketch(np.unique(ids)),
            label=f"ad-{ad_id}",
        )

    queries = QuerySet([make_query(0), make_query(1)], family)
    detector = StreamingDetector(
        DetectorConfig(num_hashes=400, threshold=0.45), queries, KF_RATE
    )

    stream_ids = extractor.cell_ids_from_clip(broadcast)
    window = detector.window_frames
    chunk = 20 * window  # feed 100 s at a time, window-aligned

    matches = []
    subscribed_late = False
    for start in range(0, len(stream_ids), chunk):
        if start >= 4 * chunk and not subscribed_late:
            print(f"  [t={start / KF_RATE:.0f}s] late subscription of ad-2")
            detector.subscribe(make_query(2))
            subscribed_late = True
        matches.extend(detector.process_cell_ids(stream_ids[start : start + chunk]))

    print(f"\nProcessed {detector.stats.windows_processed} windows "
          f"({detector.stats.matches_reported} raw matches)\n")

    detections = merge_matches(matches, gap_frames=window)
    print("Airing report:")
    for ad_id in range(3):
        booked_start, booked_end = aired[ad_id]
        ad_detections = [d for d in detections if d.qid == ad_id]
        if not ad_detections:
            print(f"  ad-{ad_id}: NOT DETECTED — investigate!")
            continue
        best = max(ad_detections, key=lambda d: d.peak_similarity)
        start_s = best.start_frame / KF_RATE
        end_s = best.end_frame / KF_RATE
        expected_frames = ads[ad_id].num_frames
        coverage = min(best.end_frame, booked_end * KF_RATE) - max(
            best.start_frame, booked_start * KF_RATE
        )
        tampered = coverage < 0.8 * expected_frames
        status = "TAMPERED (partial airing)" if tampered else "aired in full"
        print(f"  ad-{ad_id}: detected {start_s:.0f}s-{end_s:.0f}s "
              f"(booked {booked_start:.0f}s), similarity "
              f"{best.peak_similarity:.2f} -> {status}")


if __name__ == "__main__":
    main()
