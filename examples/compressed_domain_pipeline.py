#!/usr/bin/env python
"""The compressed-domain pipeline, end to end through the toy codec.

Section III-A: "We partially decode incoming video bit streams to
Discrete Cosine (DC) sequence and extract the DC coefficients of key
(or I) frames." This example makes every stage of that sentence
concrete:

1. synthesise a clip and *encode* it into a real byte-level bitstream
   (8x8 DCT, JPEG-style quantisation, zig-zag scans, varint packing);
2. *partially decode* the bitstream — only the DC coefficient of every
   block of every I frame is read; AC coefficients are skipped and no
   inverse DCT runs;
3. fingerprint the DC grids (3x3 block averages → Eq. (1) normalisation
   → grid-pyramid cell ids);
4. subscribe the fingerprints as a query and detect a *re-compressed*
   copy of the clip (same content, different quality and GOP settings)
   inside a stream.

Run:  python examples/compressed_domain_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ClipSynthesizer,
    DetectorConfig,
    FingerprintExtractor,
    MinHashFamily,
    QuerySet,
    StreamingDetector,
)
from repro.baselines.membership import jaccard_similarity
from repro.codec.gop import decode_dc_coefficients, encode_video

KF_RATE = 2.0


def main() -> None:
    synth = ClipSynthesizer(seed=23)
    clip = synth.generate_clip(20.0, label="master", fps=KF_RATE)

    # --- stage 1: encode ------------------------------------------------
    master = encode_video(clip.frames, fps=clip.fps, quality=90, gop_size=4)
    print(f"Master encode : quality=90, GOP=4 -> {master.size_bytes} bytes, "
          f"{master.num_frames} frames, {master.num_keyframes} I frames")

    pirate = encode_video(clip.frames, fps=clip.fps, quality=45, gop_size=4)
    print(f"Pirate encode : quality=45, GOP=4 -> {pirate.size_bytes} bytes "
          f"({100 * pirate.size_bytes / master.size_bytes:.0f}% of master)")

    # --- stage 2: partial decode -----------------------------------------
    frame_index, dc_grid = next(iter(decode_dc_coefficients(master)))
    print(f"\nPartial decode of I frame {frame_index}: DC grid "
          f"{dc_grid.shape[0]}x{dc_grid.shape[1]} blocks, e.g. block (0,0) "
          f"mean luminance ≈ {dc_grid[0, 0] / master.block_size + 128:.1f} "
          f"(true: {clip.frames[frame_index][:8, :8].mean():.1f})")

    # --- stage 3: fingerprint --------------------------------------------
    extractor = FingerprintExtractor()
    master_ids = extractor.cell_ids_from_encoded(master)
    pirate_ids = extractor.cell_ids_from_encoded(pirate)
    print(f"\nFingerprints: {len(np.unique(master_ids))} distinct cell ids "
          f"(master) vs {len(np.unique(pirate_ids))} (pirate); "
          f"Jaccard = {jaccard_similarity(master_ids, pirate_ids):.2f}")

    # --- stage 4: detect the re-compressed copy in a stream ---------------
    family = MinHashFamily(num_hashes=400, seed=0)
    queries = QuerySet.from_cell_ids(
        {0: master_ids}, {0: master.num_keyframes}, family
    )
    detector = StreamingDetector(
        DetectorConfig(num_hashes=400, threshold=0.7), queries, KF_RATE
    )

    rng = np.random.default_rng(0)
    filler = rng.integers(100_000, 900_000, size=120)
    stream = np.concatenate([filler, pirate_ids, filler])
    matches = detector.process_cell_ids(stream)

    if matches:
        best = max(matches, key=lambda m: m.similarity)
        print(f"\nDetected the re-compressed copy: key frames "
              f"[{best.start_frame}, {best.end_frame}) at similarity "
              f"{best.similarity:.2f} "
              f"(true span [{len(filler)}, {len(filler) + len(pirate_ids)}))")
    else:
        print("\nCopy missed — not expected at these settings")


if __name__ == "__main__":
    main()
