#!/usr/bin/env python
"""Quickstart: monitor a handful of query clips over a doctored stream.

Builds a small synthetic workload end to end — a clip library, a stream
with the clips spliced in at random positions — then runs the paper's
default detector (Bit signatures + Hash-Query index, Sequential order)
and prints every detected copy next to the ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ClipLibrary,
    DetectorConfig,
    PreparedWorkload,
    ScaleProfile,
    StreamDoctor,
    merge_matches,
    run_detector,
)


def main() -> None:
    profile = ScaleProfile(
        keyframes_per_second=2.0,
        stream_seconds=600.0,
        num_queries=5,
        query_min_seconds=20.0,
        query_max_seconds=40.0,
    )
    print(f"Generating {profile.num_queries} query clips and a "
          f"{profile.stream_seconds:.0f}s stream ...")
    library = ClipLibrary.generate(profile, seed=42)
    stream = StreamDoctor(profile, seed=42).build_vs1(library)

    print("Extracting frame fingerprints (3x3 DC blocks, d=5, u=4) ...")
    prepared = PreparedWorkload.prepare(stream, library)

    config = DetectorConfig(num_hashes=400, threshold=0.7)
    print(f"Running detector: K={config.num_hashes}, δ={config.threshold}, "
          f"w={config.window_seconds:.0f}s, {config.order.value} order, "
          f"{config.representation.value} representation, "
          f"index={'on' if config.use_index else 'off'}")
    result = run_detector(prepared, config)

    kf = profile.keyframes_per_second
    print(f"\nProcessed {result.stats.windows_processed} basic windows in "
          f"{result.cpu_seconds:.3f}s "
          f"({result.stats.matches_reported} raw match events)")

    print("\nDetections (merged match runs):")
    for detection in merge_matches(result.matches, gap_frames=10):
        print(f"  query {detection.qid}: stream "
              f"{detection.start_frame / kf:7.1f}s - "
              f"{detection.end_frame / kf:7.1f}s  "
              f"peak similarity {detection.peak_similarity:.2f}")

    print("\nGround truth insertions:")
    for occurrence in stream.ground_truth:
        print(f"  query {occurrence.qid}: stream "
              f"{occurrence.begin_frame / kf:7.1f}s - "
              f"{occurrence.end_frame / kf:7.1f}s")

    print(f"\nPrecision: {result.quality.precision:.2f}  "
          f"Recall: {result.quality.recall:.2f}")


if __name__ == "__main__":
    main()
