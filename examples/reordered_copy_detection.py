#!/usr/bin/env python
"""Temporal-reordering robustness — the paper's core claim, side by side.

A short video is attacked the way the paper's VS2 stream attacks its
inserts (brightness/color alteration, noise, resolution change, NTSC→PAL
re-timing) and its segments are then shuffled. The attacked copy is
spliced into a stream, and three detectors look for it:

* Bit   — the paper's method (set similarity over min-hash sketches);
* Seq   — rigid sliding-window frame matching (Hampapur et al.);
* Warp  — dynamic time warping with a Sakoe–Chiba band (Chiu et al.).

Set similarity is invariant to the shuffle; rigid and monotone-warping
alignment are not. This is Figures 13-15 in one script.

Run:  python examples/reordered_copy_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ClipSynthesizer,
    DetectorConfig,
    FingerprintExtractor,
    MinHashFamily,
    QuerySet,
    StreamingDetector,
)
from repro.baselines.seq import SeqMatcher, ordinal_signature
from repro.baselines.warp import WarpMatcher
from repro.features.dc_extract import block_means_from_frames
from repro.video.clip import concat_clips
from repro.video.edits import EditPipeline
from repro.video.formats import NTSC, PAL, VideoFormat
from repro.video.reorder import reorder_segments

KF_RATE = 2.0


def main() -> None:
    synth = ClipSynthesizer(seed=11)
    original = synth.generate_clip(40.0, label="the-video", fps=KF_RATE)

    # --- the attack chain (the paper's VS2 recipe) --------------------
    pipeline = EditPipeline(
        target_format=VideoFormat(
            "PAL-kf", PAL.width, PAL.height, KF_RATE * PAL.fps / NTSC.fps
        ),
        noise_sigma=2.0,
        seed=3,
    )
    attacked = pipeline.apply(original)
    attacked, permutation = reorder_segments(attacked, 8, seed=6)
    print(f"Original: {original.num_frames} key frames; attacked copy: "
          f"{attacked.num_frames} key frames (PAL re-timed), segments "
          f"shuffled to order {permutation}")

    # --- splice the attacked copy into programming --------------------
    before = synth.generate_clip(120.0, label="before", fps=KF_RATE)
    after = synth.generate_clip(120.0, label="after", fps=KF_RATE)

    def conform(clip):
        from repro.video.edits import change_resolution
        from repro.video.clip import VideoClip

        resized = change_resolution(clip, PAL.height, PAL.width)
        return VideoClip(frames=resized.frames, fps=KF_RATE, label=clip.label)

    stream = concat_clips(
        [conform(before), conform(attacked), conform(after)], label="stream"
    )
    copy_begin = conform(before).num_frames
    copy_end = copy_begin + attacked.num_frames
    print(f"Stream: {stream.duration:.0f}s; copy occupies key frames "
          f"[{copy_begin}, {copy_end})\n")

    extractor = FingerprintExtractor()

    # --- Bit: the paper's method ---------------------------------------
    family = MinHashFamily(num_hashes=400, seed=0)
    query_ids = extractor.cell_ids_from_clip(original)
    queries = QuerySet.from_cell_ids(
        {0: query_ids}, {0: original.num_frames}, family
    )
    detector = StreamingDetector(
        DetectorConfig(num_hashes=400, threshold=0.6), queries, KF_RATE
    )
    matches = detector.process_cell_ids(extractor.cell_ids_from_clip(stream))
    if matches:
        best = max(matches, key=lambda m: m.similarity)
        print(f"Bit : DETECTED  span [{best.start_frame}, {best.end_frame})"
              f"  similarity {best.similarity:.2f}")
    else:
        print("Bit : missed")

    # --- Seq / Warp baselines ------------------------------------------
    query_ranks = ordinal_signature(block_means_from_frames(original.frames))
    stream_ranks = ordinal_signature(block_means_from_frames(stream.frames))

    seq_hits = SeqMatcher(distance_threshold=0.4, gap_frames=10).find_matches(
        query_ranks, stream_ranks
    )
    in_copy = [h for h in seq_hits
               if copy_begin - 20 <= h["start_frame"] <= copy_end]
    print(f"Seq : {'DETECTED' if in_copy else 'missed'}  "
          f"({len(seq_hits)} raw hits, {len(in_copy)} near the copy; "
          f"best aligned distance "
          f"{min((h['distance'] for h in seq_hits), default=float('nan')):.2f})")

    warp_hits = WarpMatcher(
        distance_threshold=0.4, band_width=6, gap_frames=10
    ).find_matches(query_ranks, stream_ranks)
    in_copy = [h for h in warp_hits
               if copy_begin - 20 <= h["start_frame"] <= copy_end]
    print(f"Warp: {'DETECTED' if in_copy else 'missed'}  "
          f"({len(warp_hits)} raw hits, {len(in_copy)} near the copy)")

    print("\nWhy: the shuffle leaves the clip's *set* of frame signatures "
          "unchanged, so the Jaccard similarity the Bit method estimates "
          "is unaffected; rigid and monotone-warping alignments cannot "
          "map transposed segments onto each other.")


if __name__ == "__main__":
    main()
