#!/usr/bin/env python
"""A realistic monitoring-service loop: persistence + live chunks.

Models how the paper's system would actually be deployed as a service:

1. **Provisioning** — query clips are fingerprinted and sketched once,
   and the subscription is persisted to disk (`save_query_set`).
2. **Service start** — a fresh process reloads the subscription
   (`load_query_set`), builds the detector and wraps it in a
   `LiveMonitor`.
3. **Ingest loop** — encoded bitstream chunks of varying size arrive
   (here: a VS2-style broadcast cut into irregular pieces); matches
   surface as the chunks are pushed, and a rolling report is kept.
4. **Shift change** — one query is unsubscribed and a new one
   subscribed mid-stream, exercising online index maintenance.

Run:  python examples/monitoring_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ClipSynthesizer,
    DetectorConfig,
    FingerprintExtractor,
    LiveMonitor,
    MinHashFamily,
    Query,
    QuerySet,
    StreamingDetector,
    load_query_set,
    merge_matches,
    save_query_set,
)
from repro.codec.gop import encode_video
from repro.video.clip import concat_clips

KF_RATE = 2.0


def provision(path: Path) -> dict:
    """Fingerprint three query clips and persist the subscription.

    Assets arrive as encoded files, so fingerprints are taken through
    the codec's partial decoder — the same path the live stream uses.
    """
    synth = ClipSynthesizer(seed=101)
    extractor = FingerprintExtractor()
    family = MinHashFamily(num_hashes=400, seed=0)
    clips = {
        qid: synth.generate_clip(25.0 + 5 * qid, label=f"asset-{qid}", fps=KF_RATE)
        for qid in range(3)
    }
    cell_ids = {}
    for qid, clip in clips.items():
        master = encode_video(clip.frames, fps=clip.fps, quality=90, gop_size=1)
        cell_ids[qid] = extractor.cell_ids_from_encoded(master)
    queries = QuerySet.from_cell_ids(
        cell_ids,
        {qid: clip.num_frames for qid, clip in clips.items()},
        family,
        labels={qid: clip.label for qid, clip in clips.items()},
    )
    save_query_set(queries, path)
    print(f"[provision] persisted {len(queries)} queries to {path.name}")
    return clips


def build_broadcast(clips: dict) -> tuple:
    """A broadcast carrying copies of assets 0 and 2 (asset 1 never airs)."""
    synth = ClipSynthesizer(seed=202)
    pieces = [
        synth.generate_clip(60.0, label="prog-a", fps=KF_RATE),
        clips[0],
        synth.generate_clip(90.0, label="prog-b", fps=KF_RATE),
        clips[2],
        synth.generate_clip(60.0, label="prog-c", fps=KF_RATE),
    ]
    broadcast = concat_clips(pieces, label="broadcast")
    print(f"[broadcast] {broadcast.duration:.0f}s assembled "
          f"({broadcast.num_frames} key frames)")
    return broadcast


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        subscription_path = Path(tmp) / "subscription.npz"
        clips = provision(subscription_path)
        broadcast = build_broadcast(clips)

        # --- service start: a "fresh process" reloads everything -------
        queries = load_query_set(subscription_path)
        print(f"[service] reloaded {len(queries)} queries "
              f"(K={queries.family.num_hashes})")
        extractor = FingerprintExtractor()
        detector = StreamingDetector(
            DetectorConfig(num_hashes=400, threshold=0.6), queries, KF_RATE
        )
        monitor = LiveMonitor(detector, extractor)

        # --- ingest loop: irregular encoded chunks ---------------------
        matches = []
        alerted = set()
        rng = np.random.default_rng(7)
        cursor = 0
        chunk_index = 0
        while cursor < broadcast.num_frames:
            size = int(rng.integers(40, 120))
            chunk_frames = broadcast.frames[cursor : cursor + size]
            cursor += size
            chunk_index += 1
            encoded = encode_video(
                chunk_frames, fps=KF_RATE, quality=80, gop_size=1
            )
            new_matches = monitor.push_encoded(encoded)
            for match in new_matches:
                alert_key = (match.qid, match.position_frame)
                if alert_key not in alerted:
                    alerted.add(alert_key)
                    print(f"[ingest] chunk {chunk_index}: query {match.qid} "
                          f"sim {match.similarity:.2f} at key frame "
                          f"{match.position_frame}")
            matches.extend(new_matches)

            if chunk_index == 3:
                # Shift change: asset-1 never airs, drop it; subscribe a
                # new asset mid-stream.
                detector.unsubscribe(1)
                synth = ClipSynthesizer(seed=303)
                late_clip = synth.generate_clip(20.0, label="asset-9",
                                                fps=KF_RATE)
                ids = extractor.cell_ids_from_clip(late_clip)
                detector.subscribe(Query(
                    qid=9,
                    cell_ids=np.unique(ids),
                    num_frames=late_clip.num_frames,
                    sketch=queries.family.sketch(np.unique(ids)),
                    label="asset-9",
                ))
                print("[service] shift change: -asset-1, +asset-9")

        matches.extend(monitor.flush())

        # --- rolling report ---------------------------------------------
        print("\n[report] detections:")
        for detection in merge_matches(matches, gap_frames=10):
            print(f"  query {detection.qid}: key frames "
                  f"[{detection.start_frame}, {detection.end_frame})  "
                  f"peak {detection.peak_similarity:.2f}")
        detected = {d.qid for d in merge_matches(matches)}
        assert 0 in detected and 2 in detected, "aired assets must be found"
        assert 1 not in detected, "asset-1 never aired"
        print("[report] OK — aired assets detected, silent asset clean")


if __name__ == "__main__":
    main()
