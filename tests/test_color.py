"""Tests for the RGB/YUV color subsystem.

The payoff test is ``test_leakage_constant_is_justified``: the grayscale
attack model assumes a chroma alteration leaks only a small fraction
into luminance, and here that fraction is *measured* on genuine RGB
chroma attacks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.color import (
    ColorClip,
    chroma_shift,
    colorize,
    luma_leakage,
    rgb_to_yuv,
    yuv_to_rgb,
)
from repro.video.edits import _COLOR_LUMA_LEAKAGE
from repro.video.synth import ClipSynthesizer


class TestConversions:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        rgb = rng.uniform(0, 255, size=(4, 8, 8, 3))
        assert np.allclose(yuv_to_rgb(rgb_to_yuv(rgb)), rgb, atol=1e-9)

    def test_gray_has_zero_chroma(self):
        gray = np.full((2, 4, 4, 3), 120.0)
        yuv = rgb_to_yuv(gray)
        assert np.allclose(yuv[..., 0], 120.0)
        assert np.allclose(yuv[..., 1:], 0.0, atol=1e-9)

    def test_luma_weights(self):
        red = np.zeros((1, 1, 1, 3))
        red[..., 0] = 255.0
        assert rgb_to_yuv(red)[..., 0] == pytest.approx(255 * 0.299)

    def test_rejects_bad_shape(self):
        with pytest.raises(VideoError):
            rgb_to_yuv(np.zeros((2, 2, 4)))
        with pytest.raises(VideoError):
            yuv_to_rgb(np.zeros((2, 2)))


class TestColorClip:
    def test_validation(self):
        with pytest.raises(VideoError):
            ColorClip(frames=np.zeros((2, 4, 4)), fps=1.0)
        with pytest.raises(VideoError):
            ColorClip(frames=np.full((1, 4, 4, 3), 300.0), fps=1.0)
        with pytest.raises(VideoError):
            ColorClip(frames=np.zeros((0, 4, 4, 3)), fps=1.0)
        with pytest.raises(VideoError):
            ColorClip(frames=np.zeros((1, 4, 4, 3)), fps=0.0)

    def test_luminance_plane(self):
        rng = np.random.default_rng(1)
        frames = rng.uniform(0, 255, size=(3, 8, 8, 3))
        clip = ColorClip(frames=frames, fps=2.0, label="c")
        y = clip.luminance()
        expected = frames @ np.array([0.299, 0.587, 0.114])
        assert np.allclose(y.frames, expected)
        assert y.fps == 2.0


class TestColorize:
    def test_preserves_luminance(self):
        gray = ClipSynthesizer(seed=3).generate_clip(5.0, label="g", fps=2.0)
        color = colorize(gray, seed=1)
        recovered = color.luminance()
        # Equal up to gamut clipping at the RGB boundaries.
        assert np.abs(recovered.frames - gray.frames).mean() < 3.0

    def test_produces_real_chroma(self):
        gray = ClipSynthesizer(seed=3).generate_clip(5.0, label="g", fps=2.0)
        color = colorize(gray, seed=1, saturation=40.0)
        chroma = rgb_to_yuv(color.frames)[..., 1:]
        assert np.abs(chroma).mean() > 5.0

    def test_deterministic(self):
        gray = ClipSynthesizer(seed=3).generate_clip(3.0, label="g", fps=2.0)
        a = colorize(gray, seed=1)
        b = colorize(gray, seed=1)
        assert np.array_equal(a.frames, b.frames)

    def test_rejects_negative_saturation(self):
        gray = ClipSynthesizer(seed=3).generate_clip(2.0, label="g", fps=2.0)
        with pytest.raises(VideoError):
            colorize(gray, saturation=-1.0)


class TestChromaShift:
    def _color_clip(self, seed=4):
        gray = ClipSynthesizer(seed=seed).generate_clip(8.0, label="g", fps=2.0)
        return colorize(gray, seed=seed, saturation=35.0)

    def test_changes_chroma_strongly(self):
        clip = self._color_clip()
        shifted = chroma_shift(clip, strength=0.5, seed=2)
        chroma_before = rgb_to_yuv(clip.frames)[..., 1:]
        chroma_after = rgb_to_yuv(shifted.frames)[..., 1:]
        relative = np.abs(chroma_after - chroma_before).mean() / (
            np.abs(chroma_before).mean() + 1e-9
        )
        assert relative > 0.15  # a genuinely visible color change

    def test_luma_nearly_preserved(self):
        clip = self._color_clip()
        shifted = chroma_shift(clip, strength=0.5, seed=2)
        assert luma_leakage(clip, shifted) < 0.02

    def test_raw_mode_leaks_more(self):
        clip = self._color_clip()
        preserved = chroma_shift(clip, 0.5, seed=2, luma_preserving=True)
        raw = chroma_shift(clip, 0.5, seed=2, luma_preserving=False)
        assert luma_leakage(clip, raw) > luma_leakage(clip, preserved)

    def test_zero_strength_identity(self):
        clip = self._color_clip()
        shifted = chroma_shift(clip, strength=0.0, seed=2)
        assert np.allclose(shifted.frames, clip.frames)

    def test_rejects_bad_strength(self):
        with pytest.raises(VideoError):
            chroma_shift(self._color_clip(), strength=1.5)


class TestLeakageConstant:
    def test_leakage_constant_is_sandwiched(self):
        """The grayscale model's ``_COLOR_LUMA_LEAKAGE`` must lie between
        the two physical extremes measured on real chroma attacks of the
        paper's 20-50 % strengths: a Y'CbCr-domain edit (Y untouched,
        leakage ≈ gamut effects only) and a raw RGB channel-gain edit
        (the upper bound)."""
        preserved_leakages = []
        raw_leakages = []
        for seed in range(8):
            gray = ClipSynthesizer(seed=seed).generate_clip(
                6.0, label=f"g{seed}", fps=2.0
            )
            clip = colorize(gray, seed=seed, saturation=35.0)
            for strength in (0.2, 0.35, 0.5):
                preserved = chroma_shift(
                    clip, strength, seed=seed, luma_preserving=True
                )
                raw = chroma_shift(
                    clip, strength, seed=seed, luma_preserving=False
                )
                # Normalised per unit attack strength, matching how the
                # grayscale model applies the constant.
                preserved_leakages.append(
                    luma_leakage(clip, preserved) / strength
                )
                raw_leakages.append(luma_leakage(clip, raw) / strength)
        lower = float(np.mean(preserved_leakages))
        upper = float(np.mean(raw_leakages))
        assert lower < _COLOR_LUMA_LEAKAGE < upper, (
            f"modelled {_COLOR_LUMA_LEAKAGE} outside the measured "
            f"[{lower:.4f}, {upper:.4f}] sandwich"
        )

    def test_leakage_requires_matching_shapes(self):
        a = self_clip = ColorClip(
            frames=np.zeros((1, 4, 4, 3)), fps=1.0, label="a"
        )
        b = ColorClip(frames=np.zeros((1, 4, 8, 3)), fps=1.0, label="b")
        with pytest.raises(VideoError):
            luma_leakage(a, b)
