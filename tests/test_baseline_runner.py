"""Tests for the baseline experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.seq import SeqMatcher
from repro.baselines.warp import WarpMatcher
from repro.evaluation.baseline_runner import OrdinalWorkload, run_baseline


@pytest.fixture(scope="module")
def vs1_ordinal(request):
    vs1_stream = request.getfixturevalue("vs1_stream")
    small_library = request.getfixturevalue("small_library")
    return OrdinalWorkload.prepare(vs1_stream, small_library)


class TestOrdinalWorkload:
    def test_shapes(self, vs1_ordinal, vs1_stream, small_library):
        assert vs1_ordinal.stream_ranks.shape == (
            vs1_stream.clip.num_frames,
            9,
        )
        for qid, clip in small_library:
            assert vs1_ordinal.query_ranks[qid].shape == (clip.num_frames, 9)

    def test_ranks_are_permutations(self, vs1_ordinal):
        row = vs1_ordinal.stream_ranks[0]
        assert sorted(row.tolist()) == list(range(9))


class TestRunBaseline:
    def test_seq_perfect_on_vs1(self, vs1_ordinal):
        """Unedited copies are trivially found by rigid matching when the
        window slides frame by frame (Hampapur's original protocol; a
        coarser gap misses copies not aligned to it)."""
        result = run_baseline(
            vs1_ordinal,
            SeqMatcher(distance_threshold=0.05, gap_frames=1),
            window_frames=10,
        )
        assert result.quality.recall == 1.0
        assert result.quality.precision == 1.0
        assert result.cpu_seconds > 0

    def test_seq_impossible_threshold_finds_nothing(self, vs1_ordinal):
        result = run_baseline(
            vs1_ordinal,
            SeqMatcher(distance_threshold=0.0, gap_frames=1000),
            window_frames=10,
        )
        # Gap 1000 skips most alignments; threshold 0 requires identity.
        assert result.quality.precision == 1.0  # vacuous or exact hits only

    def test_warp_on_vs1(self, vs1_ordinal):
        result = run_baseline(
            vs1_ordinal,
            WarpMatcher(distance_threshold=0.05, band_width=2, gap_frames=10),
            window_frames=10,
        )
        assert result.quality.recall >= 0.8

    def test_matches_carry_distances(self, vs1_ordinal):
        result = run_baseline(
            vs1_ordinal,
            SeqMatcher(distance_threshold=0.05, gap_frames=10),
            window_frames=10,
        )
        for match in result.matches:
            assert 0.95 <= match.similarity <= 1.0
