"""Unit tests for repro.utils (rng, bitops, timing, stats, validation)."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.utils.bitops import (
    bit_length_words,
    count_ones,
    count_zeros_in_low_bits,
    low_mask,
)
from repro.utils.rng import derive_seed, make_rng
from repro.utils.stats import RunningStats, mean, percentile
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    require,
    require_in_range,
    require_positive,
    require_type,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_purpose_separates(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_parent_separates(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_negative_parent_allowed(self):
        assert derive_seed(-5, "x") >= 0

    def test_63_bit_range(self):
        for i in range(50):
            assert 0 <= derive_seed(i, "p") < (1 << 63)


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(3, "x").integers(0, 1000, size=10)
        b = make_rng(3, "x").integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_purpose_different_stream(self):
        a = make_rng(3, "x").integers(0, 1000, size=10)
        b = make_rng(3, "y").integers(0, 1000, size=10)
        assert not np.array_equal(a, b)

    def test_no_purpose_uses_raw_seed(self):
        a = make_rng(3).integers(0, 1000, size=10)
        b = np.random.default_rng(3).integers(0, 1000, size=10)
        assert np.array_equal(a, b)


class TestBitops:
    def test_count_ones_zero(self):
        assert count_ones(0) == 0

    def test_count_ones_all(self):
        assert count_ones((1 << 100) - 1) == 100

    def test_count_ones_sparse(self):
        assert count_ones((1 << 5) | (1 << 77)) == 2

    def test_count_ones_rejects_negative(self):
        with pytest.raises(ValueError):
            count_ones(-1)

    def test_low_mask(self):
        assert low_mask(0) == 0
        assert low_mask(3) == 0b111

    def test_low_mask_rejects_negative(self):
        with pytest.raises(ValueError):
            low_mask(-1)

    def test_count_zeros_in_low_bits(self):
        # 0b101 in width 4 has zeros at positions 1 and 3.
        assert count_zeros_in_low_bits(0b101, 4) == 2

    def test_count_zeros_ignores_high_bits(self):
        assert count_zeros_in_low_bits(0b11110000, 4) == 4

    def test_bit_length_words(self):
        assert bit_length_words(0) == 0
        assert bit_length_words(1) == 1
        assert bit_length_words(64) == 1
        assert bit_length_words(65) == 2

    @given(st.integers(min_value=0, max_value=(1 << 200) - 1))
    def test_count_ones_matches_bin(self, value):
        assert count_ones(value) == bin(value).count("1")

    @given(
        st.integers(min_value=0, max_value=(1 << 128) - 1),
        st.integers(min_value=0, max_value=128),
    )
    def test_zeros_plus_ones_is_width(self, value, width):
        masked = value & low_mask(width)
        assert count_zeros_in_low_bits(value, width) + count_ones(masked) == width


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        assert first >= 0.01
        with sw:
            time.sleep(0.01)
        assert sw.elapsed >= first + 0.01

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0

    def test_reset_running_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.reset()

    def test_running_property(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_generator_input(self):
        assert mean(x for x in (2.0, 4.0)) == 3.0


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([42.0], 75) == 42.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestRunningStats:
    def test_mean_and_count(self):
        rs = RunningStats()
        rs.extend([1.0, 2.0, 3.0])
        assert rs.count == 3
        assert rs.mean == pytest.approx(2.0)

    def test_min_max(self):
        rs = RunningStats()
        rs.extend([5.0, -1.0, 3.0])
        assert rs.minimum == -1.0
        assert rs.maximum == 5.0

    def test_variance_matches_numpy(self):
        values = [1.5, 2.5, 9.0, -4.0, 0.0]
        rs = RunningStats()
        rs.extend(values)
        assert rs.variance == pytest.approx(np.var(values, ddof=1))
        assert rs.stddev == pytest.approx(np.std(values, ddof=1))

    def test_empty_defaults(self):
        rs = RunningStats()
        assert rs.mean == 0.0
        assert rs.variance == 0.0

    def test_single_value_variance_zero(self):
        rs = RunningStats()
        rs.add(7.0)
        assert rs.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_mean_matches_numpy(self, values):
        rs = RunningStats()
        rs.extend(values)
        assert rs.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)

    def test_repr_mentions_count(self):
        rs = RunningStats()
        rs.add(1.0)
        assert "count=1" in repr(rs)


class TestValidation:
    def test_require_passes(self):
        require(True, "never")

    def test_require_raises(self):
        with pytest.raises(ConfigError, match="boom"):
            require(False, "boom")

    def test_require_positive(self):
        require_positive("x", 1)
        with pytest.raises(ConfigError):
            require_positive("x", 0)
        with pytest.raises(ConfigError):
            require_positive("x", -1)

    def test_require_in_range_inclusive(self):
        require_in_range("x", 0.5, 0.0, 1.0)
        require_in_range("x", 0.0, 0.0, 1.0)
        require_in_range("x", 1.0, 0.0, 1.0)
        with pytest.raises(ConfigError):
            require_in_range("x", 1.01, 0.0, 1.0)

    def test_require_type(self):
        require_type("x", 3, int)
        with pytest.raises(ConfigError):
            require_type("x", "3", int)
