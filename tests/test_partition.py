"""Tests for grid, pyramid and grid-pyramid partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import PartitionError
from repro.partition.grid import GridPartitioner
from repro.partition.gridpyramid import GridPyramidPartitioner
from repro.partition.pyramid import pyramid_orders


class TestGridPartitioner:
    def test_num_cells(self):
        assert GridPartitioner(d=3, u=4).num_cells == 64

    def test_slice_indices(self):
        grid = GridPartitioner(d=2, u=4)
        assert grid.slice_indices(np.array([[0.0, 0.99]])).tolist() == [[0, 3]]

    def test_upper_boundary_in_last_slice(self):
        grid = GridPartitioner(d=2, u=4)
        assert grid.slice_indices(np.array([[1.0, 1.0]])).tolist() == [[3, 3]]

    def test_grid_orders_row_major(self):
        grid = GridPartitioner(d=2, u=3)
        # slice (1, 2) -> 1*3 + 2 = 5
        feature = np.array([[0.4, 0.9]])
        assert grid.grid_orders(feature)[0] == 5

    def test_orders_cover_all_cells(self):
        grid = GridPartitioner(d=2, u=3)
        centers = []
        for i in range(3):
            for j in range(3):
                centers.append([(i + 0.5) / 3, (j + 0.5) / 3])
        orders = grid.grid_orders(np.array(centers))
        assert sorted(orders.tolist()) == list(range(9))

    def test_local_coordinates(self):
        grid = GridPartitioner(d=1, u=4)
        locals_ = grid.local_coordinates(np.array([[0.375]]))
        assert locals_[0, 0] == pytest.approx(0.5)

    def test_local_coordinates_boundary(self):
        grid = GridPartitioner(d=1, u=4)
        assert grid.local_coordinates(np.array([[1.0]]))[0, 0] == pytest.approx(1.0)

    def test_cell_corner_roundtrip(self):
        grid = GridPartitioner(d=3, u=4)
        for order in (0, 17, 63):
            corner = grid.cell_corner(order)
            center = np.asarray(corner) + 0.5 / 4
            assert grid.grid_orders(center[np.newaxis])[0] == order

    def test_cell_corner_bounds(self):
        grid = GridPartitioner(d=2, u=2)
        with pytest.raises(PartitionError):
            grid.cell_corner(4)

    def test_rejects_out_of_cube(self):
        grid = GridPartitioner(d=2, u=4)
        with pytest.raises(PartitionError):
            grid.grid_orders(np.array([[0.5, 1.5]]))

    def test_rejects_wrong_width(self):
        grid = GridPartitioner(d=2, u=4)
        with pytest.raises(PartitionError):
            grid.grid_orders(np.zeros((1, 3)))

    def test_rejects_bad_params(self):
        with pytest.raises(PartitionError):
            GridPartitioner(d=0, u=4)
        with pytest.raises(PartitionError):
            GridPartitioner(d=2, u=0)

    @settings(max_examples=50)
    @given(
        arrays(np.float64, (4, 3), elements=st.floats(0, 1, allow_nan=False))
    )
    def test_orders_in_range(self, features):
        grid = GridPartitioner(d=3, u=4)
        orders = grid.grid_orders(features)
        assert (orders >= 0).all() and (orders < grid.num_cells).all()


class TestPyramidOrders:
    def test_low_pyramid(self):
        # Deviation largest in dim 1, below centre -> O_p = 1.
        assert pyramid_orders(np.array([[0.5, 0.1, 0.6]]))[0] == 1

    def test_high_pyramid(self):
        # Deviation largest in dim 2, above centre -> O_p = 2 + d = 5.
        assert pyramid_orders(np.array([[0.5, 0.4, 0.95]]))[0] == 5

    def test_center_ties_to_high_zero(self):
        # At the apex every deviation is 0; argmax -> dim 0, >= centre.
        d = 4
        assert pyramid_orders(np.full((1, d), 0.5))[0] == d

    def test_tie_breaks_to_lowest_dim(self):
        # Equal deviations in dims 0 and 1 -> dim 0 wins.
        assert pyramid_orders(np.array([[0.1, 0.1]]))[0] == 0

    def test_range(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(100, 5))
        orders = pyramid_orders(points)
        assert (orders >= 0).all() and (orders < 10).all()

    def test_all_pyramids_reachable(self):
        d = 3
        points = []
        for dim in range(d):
            low = np.full(d, 0.5)
            low[dim] = 0.05
            high = np.full(d, 0.5)
            high[dim] = 0.95
            points.extend([low, high])
        orders = pyramid_orders(np.array(points))
        assert sorted(orders.tolist()) == sorted(
            list(range(d)) + [dim + d for dim in range(d)]
        )

    def test_rejects_out_of_cube(self):
        with pytest.raises(PartitionError):
            pyramid_orders(np.array([[1.2, 0.5]]))

    def test_robustness_claim(self):
        # Perturbing a non-argmax dimension never changes the pyramid.
        point = np.array([0.9, 0.55, 0.45])  # argmax dim = 0
        base = pyramid_orders(point[np.newaxis])[0]
        for delta in (-0.05, 0.05):
            perturbed = point.copy()
            perturbed[1] += delta
            assert pyramid_orders(perturbed[np.newaxis])[0] == base


class TestGridPyramidPartitioner:
    def test_num_cells(self):
        assert GridPyramidPartitioner(d=5, u=4).num_cells == 2 * 5 * 4**5

    def test_id_formula(self):
        part = GridPyramidPartitioner(d=2, u=2)
        feature = np.array([[0.8, 0.3]])
        grid_order = part.grid.grid_orders(feature)[0]
        local = part.grid.local_coordinates(feature)
        pyramid = pyramid_orders(local)[0]
        assert part.cell_ids(feature)[0] == 2 * 2 * grid_order + pyramid

    def test_ids_in_range(self):
        part = GridPyramidPartitioner(d=5, u=4)
        rng = np.random.default_rng(1)
        ids = part.cell_ids(rng.uniform(0, 1, size=(200, 5)))
        assert (ids >= 0).all() and (ids < part.num_cells).all()

    def test_decompose_roundtrip(self):
        part = GridPyramidPartitioner(d=3, u=3)
        rng = np.random.default_rng(2)
        features = rng.uniform(0, 1, size=(50, 3))
        ids = part.cell_ids(features)
        grid_orders = part.grid.grid_orders(features)
        for cell_id, expected_grid in zip(ids, grid_orders):
            grid_order, pyramid = part.decompose(int(cell_id))
            assert grid_order == expected_grid
            assert 0 <= pyramid < 6

    def test_decompose_bounds(self):
        part = GridPyramidPartitioner(d=2, u=2)
        with pytest.raises(PartitionError):
            part.decompose(part.num_cells)

    def test_single_cell_id(self):
        part = GridPyramidPartitioner(d=2, u=2)
        feature = np.array([0.1, 0.9])
        assert part.cell_id(feature) == part.cell_ids(feature[np.newaxis])[0]

    def test_deterministic(self):
        part = GridPyramidPartitioner(d=4, u=3)
        rng = np.random.default_rng(3)
        features = rng.uniform(0, 1, size=(20, 4))
        assert np.array_equal(part.cell_ids(features), part.cell_ids(features))

    def test_nearby_points_share_cell(self):
        part = GridPyramidPartitioner(d=3, u=4)
        # A point well inside a cell and pyramid tolerates small noise.
        feature = np.array([[0.30, 0.55, 0.60]])
        base = part.cell_ids(feature)[0]
        perturbed = feature + 0.005
        assert part.cell_ids(perturbed)[0] == base

    @settings(max_examples=50)
    @given(
        arrays(np.float64, (3, 5), elements=st.floats(0, 1, allow_nan=False))
    )
    def test_id_decompose_consistency(self, features):
        part = GridPyramidPartitioner(d=5, u=4)
        for cell_id in part.cell_ids(features):
            grid_order, pyramid = part.decompose(int(cell_id))
            assert cell_id == 2 * 5 * grid_order + pyramid


class TestPaperRobustnessClaim:
    """Section III-A claims the pyramid-in-grid hybrid yields fewer false
    negatives than pure grid partitioning. Measured on synthetic
    features, that sub-claim does NOT replicate at matched cell counts:
    the pyramid's diagonal boundaries add flip surface on top of the
    grid's axis-aligned ones, so a pure grid of comparable granularity
    is slightly *more* stable under both isotropic and sparse
    perturbations (recorded as a documented deviation in EXPERIMENTS.md).
    What does hold is the claim's other half: the pure pyramid alone
    (2d cells) is hopelessly coarse, and the hybrid inherits the grid's
    discrimination at sub-grid granularity.
    """

    def test_measured_deviation_hybrid_vs_matched_pure_grid(self):
        """Pin the measured direction so the deviation note stays honest:
        if partitioning changes ever make the hybrid win, this test
        fails and EXPERIMENTS.md must be updated."""
        d = 5
        hybrid = GridPyramidPartitioner(d=d, u=4)   # 2*5*4^5 = 10240 cells
        pure = GridPartitioner(d=d, u=6)            # 6^5     =  7776 cells
        assert 0.5 < hybrid.num_cells / pure.num_cells < 2.0  # comparable

        rng = np.random.default_rng(42)
        features = rng.uniform(0, 1, size=(4000, d))
        noise = rng.normal(0, 0.015, size=features.shape)
        perturbed = np.clip(features + noise, 0, 1)

        hybrid_stable = (
            hybrid.cell_ids(features) == hybrid.cell_ids(perturbed)
        ).mean()
        pure_stable = (
            pure.grid_orders(features) == pure.grid_orders(perturbed)
        ).mean()
        assert pure_stable > hybrid_stable
        # Both remain usable: the hybrid still keeps the large majority
        # of ids stable at this noise level, which — combined with the
        # within-shot dithering of real content — is what the end-to-end
        # results rely on.
        assert hybrid_stable > 0.55

    def test_pyramid_alone_too_coarse(self):
        """The other half of the paper's argument: with only 2d cells the
        pure pyramid collides unrelated content far too often."""
        d = 5
        rng = np.random.default_rng(43)
        a = rng.uniform(0, 1, size=(2000, d))
        b = rng.uniform(0, 1, size=(2000, d))
        pyramid_collisions = (pyramid_orders(a) == pyramid_orders(b)).mean()
        hybrid = GridPyramidPartitioner(d=d, u=4)
        hybrid_collisions = (hybrid.cell_ids(a) == hybrid.cell_ids(b)).mean()
        assert pyramid_collisions > 20 * hybrid_collisions
