"""Tests for the bitstream format and the GOP encoder/decoders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.bitstream import BitstreamReader, BitstreamWriter, MAGIC
from repro.codec.gop import decode_dc_coefficients, decode_video, encode_video
from repro.errors import BitstreamError, CodecError


def _random_frames(num_frames=6, height=16, width=24, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.uniform(30, 220, size=(height, width))
    drift = rng.normal(0, 2, size=(num_frames, height, width)).cumsum(axis=0)
    return np.clip(base[np.newaxis] + drift, 0, 255)


class TestVarints:
    @given(st.integers(min_value=0, max_value=(1 << 62) - 1))
    def test_uvarint_roundtrip(self, value):
        writer = BitstreamWriter()
        writer.write_uvarint(value)
        assert BitstreamReader(writer.getvalue()).read_uvarint() == value

    @given(st.integers(min_value=-(1 << 61), max_value=(1 << 61) - 1))
    def test_svarint_roundtrip(self, value):
        writer = BitstreamWriter()
        writer.write_svarint(value)
        assert BitstreamReader(writer.getvalue()).read_svarint() == value

    def test_uvarint_rejects_negative(self):
        with pytest.raises(BitstreamError):
            BitstreamWriter().write_uvarint(-1)

    def test_truncated_varint_detected(self):
        with pytest.raises(BitstreamError):
            BitstreamReader(b"\x80").read_uvarint()

    def test_truncated_bytes_detected(self):
        with pytest.raises(BitstreamError):
            BitstreamReader(b"ab").read_bytes(3)

    def test_magic_roundtrip(self):
        writer = BitstreamWriter()
        writer.write_magic()
        BitstreamReader(writer.getvalue()).read_magic()

    def test_bad_magic_detected(self):
        with pytest.raises(BitstreamError):
            BitstreamReader(b"XXXX").read_magic()

    def test_skip_uvarints(self):
        writer = BitstreamWriter()
        for value in (5, 10, 15):
            writer.write_uvarint(value)
        reader = BitstreamReader(writer.getvalue())
        reader.skip_uvarints(2)
        assert reader.read_uvarint() == 15

    def test_position_and_exhausted(self):
        reader = BitstreamReader(b"ab")
        assert reader.position == 0
        reader.read_bytes(2)
        assert reader.exhausted


class TestEncodeVideo:
    def test_header_fields(self):
        frames = _random_frames()
        encoded = encode_video(frames, fps=25.0, quality=80, gop_size=3)
        assert encoded.width == 24 and encoded.height == 16
        assert encoded.quality == 80
        assert encoded.gop_size == 3
        assert encoded.num_frames == 6
        assert encoded.fps == pytest.approx(25.0)
        assert encoded.data.startswith(MAGIC)

    def test_num_keyframes(self):
        frames = _random_frames(num_frames=7)
        encoded = encode_video(frames, fps=25.0, gop_size=3)
        # I frames at 0, 3, 6.
        assert encoded.num_keyframes == 3

    def test_all_intra(self):
        frames = _random_frames(num_frames=4)
        encoded = encode_video(frames, fps=25.0, gop_size=1)
        assert encoded.num_keyframes == 4

    def test_rejects_bad_inputs(self):
        frames = _random_frames()
        with pytest.raises(CodecError):
            encode_video(frames[0], fps=25.0)
        with pytest.raises(CodecError):
            encode_video(frames[:0], fps=25.0)
        with pytest.raises(CodecError):
            encode_video(frames, fps=0.0)
        with pytest.raises(CodecError):
            encode_video(frames, fps=25.0, gop_size=0)

    def test_higher_quality_bigger_stream(self):
        frames = _random_frames()
        small = encode_video(frames, fps=25.0, quality=20)
        big = encode_video(frames, fps=25.0, quality=95)
        assert big.size_bytes > small.size_bytes


class TestDecodeVideo:
    def test_roundtrip_quality(self):
        frames = _random_frames()
        encoded = encode_video(frames, fps=25.0, quality=90, gop_size=3)
        decoded = decode_video(encoded)
        assert decoded.shape == frames.shape
        # Quality 90 keeps frames close.
        assert np.abs(decoded - frames).mean() < 4.0

    def test_p_frames_track_content(self):
        frames = _random_frames(num_frames=8)
        encoded = encode_video(frames, fps=25.0, quality=85, gop_size=8)
        decoded = decode_video(encoded)
        # Even the last P frame should stay close to the source.
        assert np.abs(decoded[-1] - frames[-1]).mean() < 6.0

    def test_lower_quality_more_error(self):
        frames = _random_frames()
        err = {}
        for quality in (30, 90):
            encoded = encode_video(frames, fps=25.0, quality=quality)
            err[quality] = np.abs(decode_video(encoded) - frames).mean()
        assert err[30] > err[90]

    def test_output_in_range(self):
        frames = _random_frames()
        decoded = decode_video(encode_video(frames, fps=25.0, quality=10))
        assert decoded.min() >= 0.0 and decoded.max() <= 255.0

    def test_unaligned_frame_size(self):
        frames = _random_frames(height=10, width=13)
        encoded = encode_video(frames, fps=25.0, quality=85)
        decoded = decode_video(encoded)
        assert decoded.shape == frames.shape
        assert np.abs(decoded - frames).mean() < 6.0


class TestPartialDecode:
    def test_yields_only_keyframes(self):
        frames = _random_frames(num_frames=7)
        encoded = encode_video(frames, fps=25.0, gop_size=3)
        indices = [idx for idx, _dc in decode_dc_coefficients(encoded)]
        assert indices == [0, 3, 6]

    def test_dc_grid_shape(self):
        frames = _random_frames(height=16, width=24)
        encoded = encode_video(frames, fps=25.0)
        _, dc_grid = next(iter(decode_dc_coefficients(encoded)))
        assert dc_grid.shape == (2, 3)

    def test_dc_matches_block_means(self):
        frames = _random_frames()
        encoded = encode_video(frames, fps=25.0, quality=95, gop_size=1)
        for index, dc_grid in decode_dc_coefficients(encoded):
            means = dc_grid / encoded.block_size + 128.0
            frame = frames[index]
            for r in range(dc_grid.shape[0]):
                for c in range(dc_grid.shape[1]):
                    block = frame[r * 8 : (r + 1) * 8, c * 8 : (c + 1) * 8]
                    assert means[r, c] == pytest.approx(block.mean(), abs=2.0)

    def test_partial_agrees_with_full_decode(self):
        frames = _random_frames(num_frames=5)
        encoded = encode_video(frames, fps=25.0, quality=85, gop_size=2)
        decoded = decode_video(encoded)
        for index, dc_grid in decode_dc_coefficients(encoded):
            means = dc_grid / encoded.block_size + 128.0
            block = decoded[index][:8, :8]
            assert means[0, 0] == pytest.approx(block.mean(), abs=1.0)

    def test_corrupt_stream_detected(self):
        frames = _random_frames()
        encoded = encode_video(frames, fps=25.0)
        corrupted = encoded.data[: len(encoded.data) // 2]
        bad = type(encoded)(
            data=corrupted,
            width=encoded.width,
            height=encoded.height,
            block_size=encoded.block_size,
            quality=encoded.quality,
            gop_size=encoded.gop_size,
            num_frames=encoded.num_frames,
            fps=encoded.fps,
        )
        with pytest.raises(BitstreamError):
            list(decode_dc_coefficients(bad))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=5))
    def test_keyframe_count_invariant(self, num_frames, gop_size):
        frames = _random_frames(num_frames=num_frames, height=8, width=8)
        encoded = encode_video(frames, fps=25.0, gop_size=gop_size)
        yielded = sum(1 for _ in decode_dc_coefficients(encoded))
        assert yielded == encoded.num_keyframes
