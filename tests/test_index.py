"""Tests for the Hash-Query index and the Figure 5 probe."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.index.hq import HashQueryIndex
from repro.index.probe import probe_index, probe_index_reference
from repro.minhash.family import MinHashFamily
from repro.signature.bitsig import BitSignature


def _family(num_hashes=32, seed=1):
    return MinHashFamily(num_hashes=num_hashes, seed=seed)


def _query_population(family, num_queries=8, seed=2):
    rng = np.random.default_rng(seed)
    sketches = {}
    lengths = {}
    for qid in range(num_queries):
        elements = rng.choice(5000, size=rng.integers(10, 40), replace=False)
        sketches[qid] = family.sketch(elements)
        lengths[qid] = int(rng.integers(2, 12))
    return sketches, lengths


class TestBuild:
    def test_invariants_after_build(self):
        family = _family()
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        index.check_invariants()
        assert index.num_queries == len(sketches)
        assert sorted(index.query_ids) == sorted(sketches)

    def test_rows_sorted(self):
        family = _family()
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        for row in index.rows:
            values = [entry.value for entry in row]
            assert values == sorted(values)

    def test_down_walk_recovers_sketch(self):
        family = _family()
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        for qid, sketch in sketches.items():
            assert np.array_equal(index.sketch_values_of(qid), sketch.values)

    def test_up_walk_identifies_query(self):
        family = _family()
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        for column in range(index.num_queries):
            # Follow query at row-0 column down to the last row, then the
            # up-walk from there must return to the same query.
            qid = index.rows[0][column].qid
            position = column
            for i in range(index.num_hashes - 1):
                position = index.rows[i][position].down
            root = index.query_of_column(index.num_hashes - 1, position)
            assert root.qid == qid

    def test_build_rejects_empty(self):
        with pytest.raises(IndexError_):
            HashQueryIndex.build({}, {})

    def test_build_rejects_missing_length(self):
        family = _family()
        with pytest.raises(IndexError_):
            HashQueryIndex.build({0: family.sketch([1])}, {})

    def test_build_rejects_mixed_widths(self):
        a = _family(num_hashes=8).sketch([1])
        b = _family(num_hashes=16).sketch([1])
        with pytest.raises(IndexError_):
            HashQueryIndex.build({0: a, 1: b}, {0: 1, 1: 1})


class TestOnlineMaintenance:
    def test_insert_matches_bulk_build(self):
        family = _family()
        sketches, lengths = _query_population(family, num_queries=6)
        bulk = HashQueryIndex.build(sketches, lengths)
        incremental = HashQueryIndex(family.num_hashes)
        for qid in sorted(sketches):
            incremental.insert(qid, sketches[qid], lengths[qid])
        incremental.check_invariants()
        for qid in sketches:
            assert np.array_equal(
                incremental.sketch_values_of(qid), bulk.sketch_values_of(qid)
            )

    def test_remove_restores_invariants(self):
        family = _family()
        sketches, lengths = _query_population(family, num_queries=6)
        index = HashQueryIndex.build(sketches, lengths)
        index.remove(3)
        index.check_invariants()
        assert index.num_queries == 5
        assert 3 not in index.query_ids
        for qid in index.query_ids:
            assert np.array_equal(
                index.sketch_values_of(qid), sketches[qid].values
            )

    def test_remove_then_insert_roundtrip(self):
        family = _family()
        sketches, lengths = _query_population(family, num_queries=5)
        index = HashQueryIndex.build(sketches, lengths)
        index.remove(2)
        index.insert(2, sketches[2], lengths[2])
        index.check_invariants()
        assert np.array_equal(index.sketch_values_of(2), sketches[2].values)

    def test_duplicate_insert_rejected(self):
        family = _family()
        sketches, lengths = _query_population(family, num_queries=3)
        index = HashQueryIndex.build(sketches, lengths)
        with pytest.raises(IndexError_):
            index.insert(0, sketches[0], lengths[0])

    def test_remove_unknown_rejected(self):
        family = _family()
        sketches, lengths = _query_population(family, num_queries=3)
        index = HashQueryIndex.build(sketches, lengths)
        with pytest.raises(IndexError_):
            index.remove(99)

    def test_insert_wrong_width_rejected(self):
        index = HashQueryIndex(8)
        with pytest.raises(IndexError_):
            index.insert(0, _family(num_hashes=16).sketch([1]), 1)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=1, max_size=8))
    def test_random_remove_sequences_keep_invariants(self, removals):
        family = _family(num_hashes=16)
        sketches, lengths = _query_population(family, num_queries=5, seed=9)
        index = HashQueryIndex.build(sketches, lengths)
        removed = set()
        for qid in removals:
            if qid in removed or len(removed) == 4:
                continue
            index.remove(qid)
            removed.add(qid)
            index.check_invariants()


class TestEqualPositions:
    def test_finds_run(self):
        family = _family()
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        row = 0
        target = index.rows[row][2].value
        positions = index.equal_positions(row, target)
        assert all(index.rows[row][p].value == target for p in positions)
        assert 2 in positions

    def test_missing_value_empty(self):
        family = _family()
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        absent = max(e.value for e in index.rows[0]) + 1
        assert len(index.equal_positions(0, absent)) == 0

    def test_row_bounds(self):
        index = HashQueryIndex(4)
        with pytest.raises(IndexError_):
            index.equal_positions(4, 0)


class TestProbe:
    def test_probe_finds_self(self):
        family = _family(num_hashes=64)
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        related = probe_index(sketches[3], index, threshold=0.7)
        qids = {element.qid for element in related}
        assert 3 in qids
        for element in related:
            if element.qid == 3:
                assert element.signature(64).similarity == 1.0

    def test_probe_signatures_match_direct_encoding(self):
        """R_L signatures equal BitSignature.encode for every member."""
        family = _family(num_hashes=64)
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        rng = np.random.default_rng(5)
        window = family.sketch(rng.choice(5000, size=25, replace=False))
        related = probe_index(window, index, threshold=0.0, prune=False)
        for element in related:
            direct = BitSignature.encode(window, sketches[element.qid])
            assert element.ge == direct.ge
            assert element.lt == direct.lt

    def test_probe_completeness_without_pruning(self):
        """Every query sharing >= 1 equal min-hash value must be in R_L."""
        family = _family(num_hashes=64)
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        rng = np.random.default_rng(6)
        for trial in range(5):
            window = family.sketch(rng.choice(5000, size=30, replace=False))
            related = {e.qid for e in probe_index(window, index, 0.0, prune=False)}
            for qid, sketch in sketches.items():
                shares = bool((window.values == sketch.values).any())
                assert (qid in related) == shares

    def test_probe_prunes_hopeless(self):
        family = _family(num_hashes=64)
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        rng = np.random.default_rng(7)
        window = family.sketch(rng.choice(5000, size=30, replace=False))
        pruned = probe_index(window, index, threshold=0.9, prune=True)
        unpruned = probe_index(window, index, threshold=0.9, prune=False)
        assert len(pruned) <= len(unpruned)
        for element in pruned:
            assert element.signature(64).n1 <= 64 * (1 - 0.9) + 1e-9

    def test_probe_carries_lengths(self):
        family = _family(num_hashes=32)
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        related = probe_index(sketches[1], index, threshold=0.5)
        for element in related:
            assert element.length_windows == lengths[element.qid]

    def test_probe_width_mismatch_rejected(self):
        family = _family(num_hashes=32)
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        with pytest.raises(IndexError_):
            probe_index(_family(num_hashes=16).sketch([1]), index, 0.5)

    @pytest.mark.parametrize("prune", [True, False])
    @pytest.mark.parametrize("threshold", [0.0, 0.5, 0.7, 0.9])
    def test_fast_probe_equals_reference(self, prune, threshold):
        """The batched probe must reproduce the Figure 5 walk exactly."""
        family = _family(num_hashes=48)
        sketches, lengths = _query_population(family, num_queries=10, seed=3)
        index = HashQueryIndex.build(sketches, lengths)
        rng = np.random.default_rng(8)
        for trial in range(8):
            # Mix pure-random windows with windows overlapping a query's
            # elements so equal values actually occur.
            elements = rng.choice(5000, size=25, replace=False)
            if trial % 2 == 0:
                qid = trial % len(sketches)
                elements = np.concatenate(
                    [elements[:10], rng.choice(5000, size=5, replace=False)]
                )
            window = family.sketch(elements)
            fast = probe_index(window, index, threshold, prune=prune)
            reference = probe_index_reference(window, index, threshold, prune=prune)
            fast_view = {(e.qid, e.ge, e.lt, e.lp) for e in fast}
            reference_view = {(e.qid, e.ge, e.lt, e.lp) for e in reference}
            assert fast_view == reference_view

    def test_returned_lp_is_last_row_cursor(self):
        """Contract: a returned RelatedQuery's ``lp`` is the query's
        column in row K-1 (where the Figure 5 walk's cursor ends), for
        the batched and reference probes alike.

        Regression: the batched probe used to freeze ``lp`` at the
        first-equal row's column, disagreeing with the reference.
        """
        family = _family(num_hashes=48)
        sketches, lengths = _query_population(family, num_queries=10, seed=3)
        index = HashQueryIndex.build(sketches, lengths)
        rng = np.random.default_rng(21)
        last_row = index.num_hashes - 1
        for _ in range(6):
            window = family.sketch(rng.choice(5000, size=25, replace=False))
            for probe in (probe_index, probe_index_reference):
                for element in probe(window, index, 0.0, prune=False):
                    walk = index.walk_up_to_root(last_row, element.lp)
                    assert index.rows[0][walk[0]].qid == element.qid

    def test_fast_probe_after_online_maintenance(self):
        """Cache invalidation: probes stay correct across insert/remove."""
        family = _family(num_hashes=32)
        sketches, lengths = _query_population(family, num_queries=6, seed=4)
        index = HashQueryIndex.build(sketches, lengths)
        probe_index(sketches[0], index, 0.5)  # populate caches
        index.remove(0)
        index.insert(0, sketches[0], lengths[0])
        fast = probe_index(sketches[0], index, 0.5)
        reference = probe_index_reference(sketches[0], index, 0.5)
        assert {(e.qid, e.ge, e.lt) for e in fast} == {
            (e.qid, e.ge, e.lt) for e in reference
        }

    def test_disjoint_window_yields_empty(self):
        family = _family(num_hashes=32)
        sketches, lengths = _query_population(family)
        index = HashQueryIndex.build(sketches, lengths)
        # Values strictly below every index value can never be equal.
        lonely = family.empty_sketch()
        related = probe_index(lonely, index, threshold=0.5)
        assert related == []
