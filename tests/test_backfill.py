"""Golden equivalence for retrospective backfill.

The archive subsystem promises that subscribing late with enough
backfill is *indistinguishable* from having subscribed at stream start:
over the overlap, the combined retro + live match stream is bit-for-bit
(same matches, same similarities, same canonical order) what a service
that carried the query from chunk 0 reports. This suite drives
hypothesis workloads through every engine mode (both combination
orders, both representations, index on/off, scalar and columnar
kernels) and shard counts 1/2/5, checks the thread and process
executors, and kills a service *mid-backfill* to prove a checkpoint
resume loses no retro matches and duplicates none.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.archive import SketchArchive
from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.core.query import Query, QuerySet
from repro.minhash.family import MinHashFamily
from repro.serve import CheckpointManager, DetectionService

CELL_SPACE = 400
NUM_HASHES = 32
WINDOW_SECONDS = 2.5
KEYFRAMES_PER_SECOND = 2.0
WINDOW_FRAMES = 5  # round(WINDOW_SECONDS * KEYFRAMES_PER_SECOND)
SHARD_COUNTS = (1, 2, 5)
LATE_QID = 100
DEEP_BACKFILL = 10**6  # clamped to the archive's retained range

ALL_MODES = [
    pytest.param(order, representation, use_index,
                 id=f"{order.value}-{representation.value}-"
                    f"{'idx' if use_index else 'noidx'}")
    for order in CombinationOrder
    for representation in Representation
    for use_index in (False, True)
]


def _match_key(match):
    return (
        match.qid,
        match.window_index,
        match.start_frame,
        match.end_frame,
        match.similarity,
    )


def _config(order, representation, use_index, threshold, vectorized=True):
    return DetectorConfig(
        num_hashes=NUM_HASHES,
        threshold=threshold,
        window_seconds=WINDOW_SECONDS,
        order=order,
        representation=representation,
        use_index=use_index,
        vectorized=vectorized,
    )


@st.composite
def backfill_workloads(draw):
    """Base queries, one late query, stream chunks, a subscribe barrier.

    The late query's length is clamped to the longest base query so the
    global ``cap_hint`` is identical whether it subscribes at chunk 0
    or late — the archive's equivalence guarantee then holds exactly.
    """
    family_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    num_base = draw(st.integers(2, 4))
    queries = {}
    frames = {}
    for qid in range(num_base):
        n = draw(st.integers(8, 40))
        queries[qid] = rng.integers(0, CELL_SPACE, size=n)
        frames[qid] = n
    late_frames = min(draw(st.integers(8, 40)), max(frames.values()))
    late_cells = rng.integers(0, CELL_SPACE, size=late_frames)

    threshold = draw(st.sampled_from([0.05, 0.3, 0.5, 0.7]))
    num_chunks = draw(st.integers(3, 5))
    chunks = []
    for position in range(num_chunks):
        num_windows = draw(st.integers(2, 6))
        length = num_windows * WINDOW_FRAMES
        if position == num_chunks - 1 and draw(st.booleans()):
            length += draw(st.integers(1, WINDOW_FRAMES - 1))
        chunk = rng.integers(0, CELL_SPACE, size=length)
        if draw(st.booleans()):
            source = draw(
                st.sampled_from(sorted(queries) + [LATE_QID])
            )
            copy = np.asarray(
                late_cells if source == LATE_QID else queries[source]
            )[:length]
            at = draw(st.integers(0, length - copy.size))
            chunk[at : at + copy.size] = copy
        chunks.append(chunk)
    subscribe_at = draw(st.integers(1, num_chunks - 1))
    return (
        family_seed, queries, frames, late_cells, late_frames,
        threshold, chunks, subscribe_at,
    )


def _query(family, qid, cells, num_frames):
    distinct = np.unique(np.asarray(cells, dtype=np.int64))
    return Query(qid=qid, cell_ids=distinct, num_frames=num_frames,
                 sketch=family.sketch(distinct))


def _from_start(config, family, queries, frames, late_cells,
                late_frames, chunks, num_workers=1, backend="serial"):
    """Reference: every query (late one included) from chunk 0."""
    all_cells = dict(queries)
    all_frames = dict(frames)
    all_cells[LATE_QID] = late_cells
    all_frames[LATE_QID] = late_frames
    service = DetectionService(
        config,
        QuerySet.from_cell_ids(all_cells, all_frames, family),
        KEYFRAMES_PER_SECOND,
        num_workers=num_workers,
        backend=backend,
    )
    for position, chunk in enumerate(chunks):
        service.run([chunk], flush=position == len(chunks) - 1)
    keys = [_match_key(m) for m in service.all_matches()]
    service.close()
    return keys


def _late_subscribe(config, family, queries, frames, late_cells,
                    late_frames, chunks, subscribe_at, num_workers=1,
                    backend="serial", directory=None):
    """Candidate: late query joins at ``subscribe_at`` with deep
    backfill over an archive taken since chunk 0."""
    archive = SketchArchive(
        family.fingerprint, NUM_HASHES,
        directory=directory, segment_windows=8,
    )
    service = DetectionService(
        config,
        QuerySet.from_cell_ids(queries, frames, family),
        KEYFRAMES_PER_SECOND,
        num_workers=num_workers,
        backend=backend,
        archive=archive,
        backfill_async=False,
    )
    late = _query(family, LATE_QID, late_cells, late_frames)
    for position, chunk in enumerate(chunks):
        service.run([chunk], flush=position == len(chunks) - 1)
        if position + 1 == subscribe_at:
            service.subscribe(late, backfill=DEEP_BACKFILL)
    assert service.drain_backfill()
    keys = [_match_key(m) for m in service.all_matches()]
    assert service.retro_matches or True  # stream may simply not match
    service.close()
    return keys


# ----------------------------------------------------------------------
# columnar engines, every mode, shards 1/2/5
# ----------------------------------------------------------------------


@pytest.mark.parametrize("order,representation,use_index", ALL_MODES)
@settings(max_examples=6, deadline=None)
@given(workload=backfill_workloads())
def test_late_subscribe_backfill_equals_from_start(
    order, representation, use_index, workload
):
    (family_seed, queries, frames, late_cells, late_frames,
     threshold, chunks, subscribe_at) = workload
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=family_seed)
    config = _config(order, representation, use_index, threshold)
    reference = _from_start(
        config, family, queries, frames, late_cells, late_frames, chunks
    )
    for num_workers in SHARD_COUNTS:
        got = _late_subscribe(
            config, family, queries, frames, late_cells, late_frames,
            chunks, subscribe_at, num_workers=num_workers,
        )
        assert got == reference


@pytest.mark.parametrize("order,representation,use_index", ALL_MODES)
def test_scalar_engine_backfill_equals_from_start(
    order, representation, use_index
):
    """The scalar (non-vectorized) engine honours the same guarantee."""
    rng = np.random.default_rng(41)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=5)
    queries = {0: rng.integers(0, CELL_SPACE, size=30),
               1: rng.integers(0, CELL_SPACE, size=20)}
    frames = {0: 30, 1: 20}
    late_cells = rng.integers(0, CELL_SPACE, size=25)
    chunks = []
    for position in range(4):
        chunk = rng.integers(0, CELL_SPACE, size=6 * WINDOW_FRAMES)
        source = [0, 1, LATE_QID][position % 3]
        copy = late_cells if source == LATE_QID else queries[source]
        chunk[: copy.size] = copy
        chunks.append(chunk)
    config = _config(order, representation, use_index, 0.3,
                     vectorized=False)
    reference = _from_start(
        config, family, queries, frames, late_cells, 25, chunks
    )
    got = _late_subscribe(
        config, family, queries, frames, late_cells, 25, chunks,
        subscribe_at=2, num_workers=2,
    )
    assert got == reference


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backfill_across_executor_backends(backend):
    """Retro equivalence holds when shards run on real executors."""
    rng = np.random.default_rng(23)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=9)
    queries = {0: rng.integers(0, CELL_SPACE, size=25),
               1: rng.integers(0, CELL_SPACE, size=35)}
    frames = {0: 25, 1: 35}
    late_cells = rng.integers(0, CELL_SPACE, size=30)
    chunks = []
    for position in range(5):
        chunk = rng.integers(0, CELL_SPACE, size=7 * WINDOW_FRAMES)
        if position % 2 == 0:
            chunk[: late_cells.size] = late_cells
        chunks.append(chunk)
    config = _config(
        CombinationOrder.SEQUENTIAL, Representation.BIT, False, 0.3
    )
    reference = _from_start(
        config, family, queries, frames, late_cells, 30, chunks
    )
    got = _late_subscribe(
        config, family, queries, frames, late_cells, 30, chunks,
        subscribe_at=3, num_workers=2, backend=backend,
    )
    assert got == reference


# ----------------------------------------------------------------------
# mid-backfill kill / resume
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "order,representation,use_index",
    [
        pytest.param(CombinationOrder.SEQUENTIAL, Representation.BIT,
                     False, id="seq-bit-noidx"),
        pytest.param(CombinationOrder.SEQUENTIAL, Representation.BIT,
                     True, id="seq-bit-idx"),
        pytest.param(CombinationOrder.GEOMETRIC, Representation.SKETCH,
                     False, id="geo-sketch-noidx"),
    ],
)
@settings(max_examples=5, deadline=None)
@given(workload=backfill_workloads(), pump=st.integers(0, 12))
def test_mid_backfill_kill_resume_loses_and_duplicates_nothing(
    order, representation, use_index, workload, pump
):
    """Kill a service while a backfill job is mid-flight; the resumed
    service finishes the job and the combined stream is exactly the
    uninterrupted run's — no retro match lost, none emitted twice."""
    (family_seed, queries, frames, late_cells, late_frames,
     threshold, chunks, subscribe_at) = workload
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=family_seed)
    config = _config(order, representation, use_index, threshold)
    reference = _from_start(
        config, family, queries, frames, late_cells, late_frames, chunks
    )
    late = _query(family, LATE_QID, late_cells, late_frames)

    with tempfile.TemporaryDirectory() as scratch:
        arch_dir = Path(scratch) / "arch"
        manager = CheckpointManager(Path(scratch) / "ckpt")
        archive = SketchArchive(
            family.fingerprint, NUM_HASHES,
            directory=arch_dir, segment_windows=8,
        )
        service = DetectionService(
            config,
            QuerySet.from_cell_ids(queries, frames, family),
            KEYFRAMES_PER_SECOND,
            num_workers=2,
            archive=archive,
            backfill_async=False,
        )
        for position in range(subscribe_at):
            service.run([chunks[position]], flush=False)
        service.subscribe(late, backfill=DEEP_BACKFILL)
        # Probe only part of the job, then die at the chunk barrier.
        service.pump_backfill(pump)
        progress = service.backfill_progress()
        service.checkpoint(manager)
        service.close()

        revived_archive = SketchArchive(
            family.fingerprint, NUM_HASHES,
            directory=arch_dir, segment_windows=8,
        )
        revived = DetectionService.restore(
            manager,
            expected_config=config,
            archive=revived_archive,
            backfill_async=False,
        )
        # The in-flight job survived the round trip.
        assert revived.backfill_progress() == progress
        for position in range(subscribe_at, len(chunks)):
            revived.run(
                [chunks[position]], flush=position == len(chunks) - 1
            )
        assert revived.drain_backfill()
        got = [_match_key(m) for m in revived.all_matches()]
        revived.close()

    assert got == reference
