"""Tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    CombinationOrder,
    DetectorConfig,
    FingerprintConfig,
    Representation,
    ScaleProfile,
    TABLE1_DEFAULTS,
)
from repro.errors import ConfigError


class TestFingerprintConfig:
    def test_defaults_match_table1(self):
        config = FingerprintConfig()
        assert config.d == TABLE1_DEFAULTS["d"]
        assert config.u == TABLE1_DEFAULTS["u"]
        assert config.num_blocks == 9

    def test_num_cells(self):
        assert FingerprintConfig(d=5, u=4).num_cells == 2 * 5 * 4**5
        assert FingerprintConfig(d=3, u=2).num_cells == 48

    def test_rejects_d_exceeding_blocks(self):
        with pytest.raises(ConfigError):
            FingerprintConfig(block_rows=2, block_cols=2, d=5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            FingerprintConfig(d=0)
        with pytest.raises(ConfigError):
            FingerprintConfig(u=0)


class TestDetectorConfig:
    def test_defaults_match_table1(self):
        config = DetectorConfig()
        assert config.num_hashes == TABLE1_DEFAULTS["num_hashes"]
        assert config.threshold == TABLE1_DEFAULTS["threshold"]
        assert config.window_seconds == TABLE1_DEFAULTS["window_seconds"]
        assert config.order is CombinationOrder.SEQUENTIAL
        assert config.representation is Representation.BIT
        assert config.use_index and config.prune

    def test_max_windows_for(self):
        config = DetectorConfig(window_seconds=5.0, tempo_scale=2.0)
        assert config.max_windows_for(30.0) == 12
        assert config.max_windows_for(1.0) == 1

    def test_max_windows_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            DetectorConfig().max_windows_for(0.0)

    def test_replace(self):
        config = DetectorConfig().replace(num_hashes=100)
        assert config.num_hashes == 100
        assert config.threshold == 0.7

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            DetectorConfig(num_hashes=0)
        with pytest.raises(ConfigError):
            DetectorConfig(threshold=1.5)
        with pytest.raises(ConfigError):
            DetectorConfig(window_seconds=0.0)
        with pytest.raises(ConfigError):
            DetectorConfig(tempo_scale=0.5)


class TestScaleProfile:
    def test_seconds_to_keyframes(self):
        profile = ScaleProfile(keyframes_per_second=2.0)
        assert profile.seconds_to_keyframes(10.0) == 20
        assert profile.seconds_to_keyframes(0.1) == 1

    def test_paper_scale(self):
        paper = ScaleProfile.paper_scale()
        assert paper.stream_seconds == 12 * 3600.0
        assert paper.num_queries == 200
        assert paper.query_max_seconds == 300.0

    def test_smoke_scale_is_small(self):
        smoke = ScaleProfile.smoke_scale()
        assert smoke.stream_seconds < 600
        assert smoke.num_queries <= 5

    def test_replace(self):
        profile = ScaleProfile().replace(num_queries=3)
        assert profile.num_queries == 3

    def test_rejects_bad_ranges(self):
        with pytest.raises(ConfigError):
            ScaleProfile(query_min_seconds=50.0, query_max_seconds=10.0)
        with pytest.raises(ConfigError):
            ScaleProfile(stream_seconds=0.0)
        with pytest.raises(ConfigError):
            ScaleProfile(keyframes_per_second=0.0)
