"""Unit tests for the serving subsystem's building blocks.

Covers the shard planner (balance, determinism, clamping, errors), the
match collector's canonical ordering, the bounded-queue backpressure
policies, cross-worker metrics merging, and the checkpoint manager's
atomicity and failure modes. End-to-end shard equivalence lives in
``test_serve_equivalence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CombinationOrder, DetectorConfig
from repro.core.query import QuerySet
from repro.core.results import Match
from repro.errors import ServeError
from repro.minhash.family import MinHashFamily
from repro.obs.merge import MergeError, merge_snapshots
from repro.persistence import PersistenceError
from repro.serve import (
    BackpressurePolicy,
    BoundedChannel,
    CheckpointManager,
    MatchCollector,
    ServiceCheckpoint,
    ShardPlanner,
    put_with_policy,
)


@pytest.fixture()
def family():
    return MinHashFamily(num_hashes=32, seed=5)


def _query_set(family, sizes):
    """Queries 0..n-1 whose frame counts are ``sizes``."""
    rng = np.random.default_rng(9)
    cells = {
        qid: rng.integers(0, 500, size=max(4, length))
        for qid, length in enumerate(sizes)
    }
    return QuerySet.from_cell_ids(
        cells, dict(enumerate(sizes)), family
    )


class TestShardPlanner:
    def test_every_query_in_exactly_one_shard(self, family):
        queries = _query_set(family, [10, 20, 30, 40, 50])
        plan = ShardPlanner(2).plan(queries, window_frames=5, tempo_scale=1.0)
        seen = [qid for shard in plan.shards for qid in shard]
        assert sorted(seen) == queries.query_ids

    def test_load_strategy_balances_candidate_caps(self, family):
        # One huge query and four tiny ones: LPT puts the giant alone.
        queries = _query_set(family, [400, 10, 10, 10, 10])
        plan = ShardPlanner(2, strategy="load").plan(
            queries, window_frames=5, tempo_scale=1.0
        )
        assert plan.shard_of(0) != plan.shard_of(1)
        giant = plan.shard_of(0)
        assert plan.shards[giant] == (0,)

    def test_count_strategy_balances_sizes(self, family):
        queries = _query_set(family, [400, 10, 10, 10])
        plan = ShardPlanner(2, strategy="count").plan(
            queries, window_frames=5, tempo_scale=1.0
        )
        assert sorted(len(shard) for shard in plan.shards) == [2, 2]

    def test_deterministic(self, family):
        queries = _query_set(family, [17, 23, 9, 31, 12, 25])
        plans = [
            ShardPlanner(3).plan(queries, window_frames=5, tempo_scale=1.0)
            for _ in range(3)
        ]
        assert plans[0] == plans[1] == plans[2]

    def test_more_shards_than_queries_clamps(self, family):
        queries = _query_set(family, [10, 20])
        plan = ShardPlanner(8).plan(queries, window_frames=5, tempo_scale=1.0)
        assert plan.num_shards == 2
        assert all(len(shard) == 1 for shard in plan.shards)

    def test_imbalance_metric(self, family):
        queries = _query_set(family, [10, 10, 10, 10])
        plan = ShardPlanner(2, strategy="count").plan(
            queries, window_frames=5, tempo_scale=1.0
        )
        assert plan.imbalance() == pytest.approx(1.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ServeError, match="num_shards"):
            ShardPlanner(0)
        with pytest.raises(ServeError, match="strategy"):
            ShardPlanner(2, strategy="alphabetical")

    def test_shard_of_unknown_query(self, family):
        queries = _query_set(family, [10])
        plan = ShardPlanner(1).plan(queries, window_frames=5, tempo_scale=1.0)
        with pytest.raises(ServeError, match="not in the shard plan"):
            plan.shard_of(99)


def _match(qid, window, start):
    return Match(qid=qid, window_index=window, start_frame=start,
                 end_frame=start + 4, similarity=0.5)


class TestMatchCollector:
    def test_sequential_order_ascending_start(self):
        collector = MatchCollector(CombinationOrder.SEQUENTIAL)
        merged = collector.merge([
            [_match(1, 0, 10), _match(1, 1, 0)],
            [_match(0, 0, 5), _match(0, 1, 0)],
        ])
        assert [(m.window_index, m.start_frame, m.qid) for m in merged] == [
            (0, 5, 0), (0, 10, 1), (1, 0, 0), (1, 0, 1),
        ]

    def test_geometric_order_descending_start(self):
        collector = MatchCollector(CombinationOrder.GEOMETRIC)
        merged = collector.merge([
            [_match(1, 0, 0)],
            [_match(0, 0, 10), _match(0, 0, 5)],
        ])
        assert [(m.window_index, m.start_frame, m.qid) for m in merged] == [
            (0, 10, 0), (0, 5, 0), (0, 0, 1),
        ]

    def test_accumulates_and_restores(self):
        collector = MatchCollector(CombinationOrder.SEQUENTIAL)
        collector.merge([[_match(0, 0, 0)]])
        collector.merge([[_match(0, 1, 0)]])
        assert len(collector) == 2
        other = MatchCollector(CombinationOrder.SEQUENTIAL)
        other.restore(collector.matches)
        assert other.matches == collector.matches


class TestBoundedChannel:
    def test_block_policy_waits_and_reports_time(self):
        import threading

        channel = BoundedChannel(1)
        channel.put("a")

        def drain():
            channel.get()

        timer = threading.Timer(0.05, drain)
        timer.start()
        outcome = channel.put("b", BackpressurePolicy.BLOCK)
        timer.join()
        assert outcome.delivered
        assert outcome.blocked_seconds > 0

    def test_drop_oldest_steals_head(self):
        channel = BoundedChannel(2)
        channel.put("a")
        channel.put("b")
        outcome = channel.put("c", BackpressurePolicy.DROP_OLDEST)
        assert outcome.delivered and outcome.dropped == ["a"]
        assert channel.get() == "b"
        assert channel.get() == "c"

    def test_shed_rejects_new_item(self):
        channel = BoundedChannel(1)
        channel.put("a")
        outcome = channel.put("b", BackpressurePolicy.SHED)
        assert not outcome.delivered and not outcome.dropped
        assert channel.get() == "a"

    def test_rejects_zero_capacity(self):
        with pytest.raises(ServeError, match="capacity"):
            BoundedChannel(0)


class TestPutWithPolicy:
    """The lossy policies against *real* multiprocessing queues — the
    process backend's actual transport — plus the steal/retry race.

    ``multiprocessing.Queue`` has no atomic steal, so ``DROP_OLDEST``
    is emulated by the producer consuming its own queue and retrying
    the put; a worker can drain the queue between those two steps
    (``Empty`` then ``Full``), and the loop must survive that.
    """

    def _mp_queue(self, capacity):
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        return context.Queue(capacity)

    def _settle(self, target, expected):
        """Wait for the feeder thread: puts reserve capacity at call
        time, but items only become stealable once flushed."""
        import time

        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                if target.qsize() == expected:
                    return
            except NotImplementedError:  # pragma: no cover - macOS
                time.sleep(0.2)
                return
            time.sleep(0.01)
        raise AssertionError("queue feeder never flushed")

    def test_shed_rejects_on_full_mp_queue(self):
        target = self._mp_queue(1)
        assert put_with_policy(
            target, "a", BackpressurePolicy.SHED
        ).delivered
        outcome = put_with_policy(target, "b", BackpressurePolicy.SHED)
        assert not outcome.delivered and not outcome.dropped
        self._settle(target, 1)
        assert target.get(timeout=5) == "a"

    def test_drop_oldest_steals_from_mp_queue(self):
        target = self._mp_queue(2)
        put_with_policy(target, "a", BackpressurePolicy.DROP_OLDEST)
        put_with_policy(target, "b", BackpressurePolicy.DROP_OLDEST)
        self._settle(target, 2)
        outcome = put_with_policy(
            target, "c", BackpressurePolicy.DROP_OLDEST
        )
        assert outcome.delivered and outcome.dropped == ["a"]
        self._settle(target, 2)
        assert [target.get(timeout=5) for _ in range(2)] == ["b", "c"]

    def test_block_waits_for_mp_consumer(self):
        import threading

        target = self._mp_queue(1)
        put_with_policy(target, "a", BackpressurePolicy.BLOCK)
        self._settle(target, 1)
        drained = []

        def drain():
            drained.append(target.get(timeout=5))

        timer = threading.Timer(0.05, drain)
        timer.start()
        outcome = put_with_policy(
            target, "b", BackpressurePolicy.BLOCK, poll_seconds=0.01
        )
        timer.join()
        assert outcome.delivered
        assert outcome.blocked_seconds > 0
        assert drained == ["a"]
        assert target.get(timeout=5) == "b"

    def test_drop_oldest_survives_empty_then_full_race(self):
        """The worker drains the queue between the producer's steal and
        its retry: ``get_nowait`` raises Empty, the retried put still
        raises Full (capacity reserved by an in-flight message), and
        the loop keeps going instead of crashing or double-dropping."""
        import queue as queue_module

        class RacyQueue:
            def __init__(self, full_puts):
                self.full_puts = full_puts
                self.items = []
                self.steal_attempts = 0

            def put_nowait(self, item):
                if self.full_puts > 0:
                    self.full_puts -= 1
                    raise queue_module.Full
                self.items.append(item)

            def get_nowait(self):
                self.steal_attempts += 1
                raise queue_module.Empty

        target = RacyQueue(full_puts=3)
        outcome = put_with_policy(
            target, "x", BackpressurePolicy.DROP_OLDEST
        )
        assert outcome.delivered
        assert outcome.dropped == []  # the worker won every steal race
        assert target.steal_attempts == 3
        assert target.items == ["x"]


class TestMergeSnapshots:
    def _snap(self, counters, gauges=None, timers=None):
        return {
            "schema": "repro.obs/1",
            "counters": counters,
            "gauges": gauges or {},
            "distributions": {},
            "timers": timers or {},
        }

    def test_additive_counters_sum(self):
        merged = merge_snapshots([
            self._snap({"engine.matches_reported": 3}),
            self._snap({"engine.matches_reported": 4}),
        ])
        assert merged["counters"]["engine.matches_reported"] == 7

    def test_replicated_counters_do_not_sum(self):
        merged = merge_snapshots([
            self._snap({"engine.windows_processed": 12}),
            self._snap({"engine.windows_processed": 12}),
        ])
        assert merged["counters"]["engine.windows_processed"] == 12
        assert merged["conflicts"] == []

    def test_replicated_disagreement_recorded(self):
        merged = merge_snapshots([
            self._snap({"engine.windows_processed": 12}),
            self._snap({"engine.windows_processed": 10}),
        ])
        assert merged["counters"]["engine.windows_processed"] == 12
        assert len(merged["conflicts"]) == 1

    def test_replicated_disagreement_strict_raises(self):
        with pytest.raises(MergeError, match="windows_processed"):
            merge_snapshots([
                self._snap({"engine.windows_processed": 12}),
                self._snap({"engine.windows_processed": 10}),
            ], strict=True)

    def test_timers_sum(self):
        merged = merge_snapshots([
            self._snap({}, timers={"phase.sketch": {"calls": 2,
                                                    "seconds": 0.5}}),
            self._snap({}, timers={"phase.sketch": {"calls": 3,
                                                    "seconds": 0.25}}),
        ])
        assert merged["timers"]["phase.sketch"] == {
            "calls": 5, "seconds": 0.75,
        }


class TestCheckpointManager:
    def _checkpoint(self, family, chunks=3):
        queries = _query_set(family, [10, 20])
        return ServiceCheckpoint(
            config=DetectorConfig(num_hashes=32),
            keyframes_per_second=2.0,
            chunks_ingested=chunks,
            cap_hint=4,
            strategy="load",
            worker_queries=[queries],
            worker_states=[{"pending": np.arange(3, dtype=np.int64)}],
            matches=[_match(0, 1, 5)],
        )

    def test_roundtrip(self, family, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(self._checkpoint(family))
        assert path == manager.latest()
        loaded = manager.load()
        assert loaded.chunks_ingested == 3
        assert loaded.cap_hint == 4
        assert loaded.matches == [_match(0, 1, 5)]
        assert loaded.worker_queries[0].query_ids == [0, 1]
        assert np.array_equal(
            loaded.worker_states[0]["pending"], np.arange(3)
        )

    def test_latest_picks_highest_position(self, family, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(self._checkpoint(family, chunks=2))
        manager.save(self._checkpoint(family, chunks=10))
        assert manager.load().chunks_ingested == 10

    def test_no_tmp_residue(self, family, tmp_path):
        """Atomic write: only the final file remains."""
        manager = CheckpointManager(tmp_path)
        manager.save(self._checkpoint(family))
        assert [p.suffix for p in tmp_path.iterdir()] == [".npz"]

    def test_config_mismatch_fails_loudly(self, family, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(self._checkpoint(family))
        with pytest.raises(PersistenceError, match="num_hashes"):
            manager.load(expected_config=DetectorConfig(num_hashes=64))

    def test_unknown_format_rejected(self, family, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(self._checkpoint(family))
        archive = dict(np.load(path, allow_pickle=True))
        archive["format"] = np.asarray(["repro.ckpt/99"], dtype=object)
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **archive)
        with pytest.raises(PersistenceError, match="repro.ckpt/99"):
            manager.load(path)

    def test_archive_members_are_exactly_the_payload(self, family, tmp_path):
        """Regression: ``save`` used to pass ``allow_pickle=True`` as a
        ``savez_compressed`` keyword, which stores it as a spurious
        archive member. The member set must be exactly the payload."""
        from repro.persistence import (
            detector_config_payload,
            query_set_payload,
        )

        checkpoint = self._checkpoint(family)
        path = CheckpointManager(tmp_path).save(checkpoint)
        with np.load(path, allow_pickle=True) as archive:
            members = set(archive.files)
        expected = {
            "format", "num_workers", "chunks_ingested", "cap_hint",
            "epoch", "keyframes_per_second", "strategy",
            "frontend_pending", "frontend_flushed", "frontend_windows",
            "frontend_frames", "archive_next", "archive_ring_indices",
            "archive_ring_starts", "archive_ring_frames",
            "archive_ring_sketches", "archive_tap_pending",
            "archive_tap_flushed", "archive_tap_frames", "backfill_jobs",
        }
        expected |= set(detector_config_payload(checkpoint.config))
        expected |= {
            f"matches_{name}"
            for name in ("qid", "window", "start", "end", "similarity")
        }
        expected |= {
            f"retro_{name}"
            for name in ("qid", "window", "start", "end", "similarity")
        }
        expected |= set(
            query_set_payload(checkpoint.worker_queries[0], prefix="w0_qs_")
        )
        expected |= {f"w0_{key}" for key in checkpoint.worker_states[0]}
        assert members == expected

    def test_legacy_spurious_allow_pickle_member_is_stripped(
        self, family, tmp_path
    ):
        """Archives written by the buggy save under older numpy (where
        ``**kwds`` swallowed ``allow_pickle`` as an array member) still
        load, and the junk member never reaches a worker-state dict."""
        import io
        import zipfile

        manager = CheckpointManager(tmp_path)
        path = manager.save(self._checkpoint(family))
        # Modern numpy binds an ``allow_pickle`` keyword for real, so
        # the junk member has to be spliced into the zip directly.
        buffer = io.BytesIO()
        np.save(buffer, np.asarray([True]))
        with zipfile.ZipFile(path, "a") as stage:
            stage.writestr("allow_pickle.npy", buffer.getvalue())
        with np.load(path, allow_pickle=True) as reread:
            assert "allow_pickle" in reread.files  # bug faithfully staged
        loaded = manager.load(path)
        assert loaded.chunks_ingested == 3
        for state in loaded.worker_states:
            assert "allow_pickle" not in state

    def test_empty_directory(self, tmp_path):
        with pytest.raises(PersistenceError, match="no checkpoint"):
            CheckpointManager(tmp_path / "absent").load()
