"""Shared fixtures for the test suite.

Workload construction (clip synthesis, stream doctoring) is the expensive
part of the tests; the session-scoped fixtures here build each artefact
once and share it across test modules. Everything is seeded, so sharing
does not introduce inter-test coupling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DetectorConfig, FingerprintConfig, ScaleProfile
from repro.evaluation.runner import PreparedWorkload
from repro.features.pipeline import FingerprintExtractor
from repro.minhash.family import MinHashFamily
from repro.video.synth import ClipSynthesizer
from repro.workloads.doctor import StreamDoctor
from repro.workloads.library import ClipLibrary


@pytest.fixture(scope="session")
def smoke_profile() -> ScaleProfile:
    """A tiny profile: four short queries on a four-minute stream."""
    return ScaleProfile.smoke_scale()

@pytest.fixture(scope="session")
def small_profile() -> ScaleProfile:
    """A small but non-trivial profile used by integration tests."""
    return ScaleProfile(
        stream_seconds=1200.0,
        num_queries=6,
        query_min_seconds=25.0,
        query_max_seconds=60.0,
    )


@pytest.fixture(scope="session")
def synthesizer() -> ClipSynthesizer:
    """Shared deterministic content generator."""
    return ClipSynthesizer(seed=1234)


@pytest.fixture(scope="session")
def small_library(small_profile, synthesizer) -> ClipLibrary:
    """Six clips of 15-40 s at key-frame cadence."""
    return ClipLibrary(small_profile, synthesizer, seed=1234)


@pytest.fixture(scope="session")
def vs1_stream(small_profile, small_library):
    """A VS1 stream (originals inserted untouched)."""
    return StreamDoctor(small_profile, seed=99).build_vs1(small_library)


@pytest.fixture(scope="session")
def vs2_stream(small_profile, small_library):
    """A VS2 stream (attacked + reordered inserts)."""
    return StreamDoctor(small_profile, seed=99).build_vs2(
        small_library, noise_sigma=2.0
    )


@pytest.fixture(scope="session")
def vs1_prepared(vs1_stream, small_library) -> PreparedWorkload:
    """Cell-id streams of the VS1 workload under default fingerprints."""
    return PreparedWorkload.prepare(vs1_stream, small_library)


@pytest.fixture(scope="session")
def vs2_prepared(vs2_stream, small_library) -> PreparedWorkload:
    """Cell-id streams of the VS2 workload under default fingerprints."""
    return PreparedWorkload.prepare(vs2_stream, small_library)


@pytest.fixture(scope="session")
def extractor() -> FingerprintExtractor:
    """Default-configuration fingerprint extractor."""
    return FingerprintExtractor(config=FingerprintConfig())


@pytest.fixture()
def family() -> MinHashFamily:
    """A modest hash family for unit tests."""
    return MinHashFamily(num_hashes=64, seed=5)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh seeded RNG per test."""
    return np.random.default_rng(777)


@pytest.fixture()
def fast_config() -> DetectorConfig:
    """A detector configuration small enough for per-test runs."""
    return DetectorConfig(num_hashes=128, threshold=0.7, window_seconds=5.0)
