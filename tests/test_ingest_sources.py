"""Tests for ingest stream sources, record/replay and fault injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IngestError
from repro.ingest import (
    CellIdSource,
    EncodedChunkSource,
    FaultInjector,
    FaultPlan,
    ReplaySource,
    StreamChunk,
    SyntheticSource,
    record_stream,
)
from repro.utils.rng import derive_seed


def _drain(source):
    return list(source)


class TestStreamChunk:
    def test_expected_keyframes_per_payload_kind(self):
        src = SyntheticSource(0, seed=1, num_chunks=1)
        encoded = src.encode_chunk(0)
        assert StreamChunk(0, 0, encoded).expected_keyframes == (
            encoded.num_keyframes
        )
        frames = np.zeros((5, 8, 8))
        assert StreamChunk(0, 0, frames).expected_keyframes == 5
        cells = np.arange(7, dtype=np.int64)
        assert StreamChunk(0, 0, cells).expected_keyframes == 7

    def test_bad_payload_shape_rejected(self):
        with pytest.raises(IngestError):
            StreamChunk(0, 0, np.zeros((2, 2))).expected_keyframes


class TestSyntheticSource:
    def test_deterministic_across_instances(self):
        a = _drain(SyntheticSource(3, seed=9, num_chunks=3))
        b = _drain(SyntheticSource(3, seed=9, num_chunks=3))
        assert [c.seq for c in a] == [0, 1, 2]
        for left, right in zip(a, b):
            assert left.payload.data == right.payload.data

    def test_streams_differ_by_id(self):
        a = SyntheticSource(0, seed=9, num_chunks=1).encode_chunk(0)
        b = SyntheticSource(1, seed=9, num_chunks=1).encode_chunk(0)
        assert a.data != b.data

    def test_offered_counters(self):
        source = SyntheticSource(0, seed=2, num_chunks=3)
        chunks = _drain(source)
        assert source.chunks_offered == 3
        assert source.keyframes_offered == sum(
            c.expected_keyframes for c in chunks
        )

    def test_copies_override_content(self):
        plain = SyntheticSource(0, seed=4, num_chunks=2)
        clip_source = SyntheticSource(0, seed=5, num_chunks=1)
        # Re-encode chunk 0 of a different stream seed as the copy.
        from repro.video.synth import ClipSynthesizer, SynthesisConfig
        from repro.ingest import INGEST_FORMAT

        synth = ClipSynthesizer(
            SynthesisConfig(video_format=INGEST_FORMAT), seed=77
        )
        clip = synth.generate_clip(2.0, "copy")
        copied = SyntheticSource(0, seed=4, num_chunks=2, copies={1: clip})
        assert copied.encode_chunk(0).data == plain.encode_chunk(0).data
        assert copied.encode_chunk(1).data != plain.encode_chunk(1).data
        del clip_source

    def test_invalid_parameters_rejected(self):
        with pytest.raises(IngestError):
            SyntheticSource(0, seed=1, num_chunks=0)
        with pytest.raises(IngestError):
            SyntheticSource(0, seed=1, num_chunks=1, chunk_seconds=0.0)


class TestWrapperSources:
    def test_cell_id_source_validates_shape(self):
        with pytest.raises(IngestError):
            CellIdSource(0, [np.zeros((2, 2))])

    def test_cell_id_source_round_trip(self):
        chunks = [np.arange(5), np.arange(3)]
        delivered = _drain(CellIdSource(0, chunks))
        assert [c.seq for c in delivered] == [0, 1]
        np.testing.assert_array_equal(delivered[0].payload, chunks[0])

    def test_encoded_chunk_source(self):
        src = SyntheticSource(0, seed=6, num_chunks=2)
        payloads = [src.encode_chunk(0), src.encode_chunk(1)]
        delivered = _drain(EncodedChunkSource(0, payloads))
        assert [c.payload.data for c in delivered] == [
            p.data for p in payloads
        ]


class TestRecordReplay:
    def test_encoded_round_trip_byte_exact(self, tmp_path):
        path = tmp_path / "stream.npz"
        original = _drain(SyntheticSource(2, seed=11, num_chunks=3))
        count = record_stream(
            path, SyntheticSource(2, seed=11, num_chunks=3)
        )
        assert count == 3
        replayed = _drain(ReplaySource(2, path))
        assert len(replayed) == 3
        for left, right in zip(original, replayed):
            assert left.seq == right.seq
            assert left.payload.data == right.payload.data
            assert left.payload.num_frames == right.payload.num_frames
            assert left.payload.fps == right.payload.fps

    def test_cell_round_trip(self, tmp_path):
        path = tmp_path / "cells.npz"
        chunks = [np.arange(6), np.arange(4) + 100]
        record_stream(path, CellIdSource(1, chunks))
        replayed = _drain(ReplaySource(1, path))
        for chunk, original in zip(replayed, chunks):
            np.testing.assert_array_equal(chunk.payload, original)

    def test_replay_preserves_injected_damage(self, tmp_path):
        """Recording a fault-wrapped source captures the corruption."""
        path = tmp_path / "damaged.npz"
        plan = FaultPlan(bit_flip=1.0, max_flips=2)
        injector = FaultInjector(
            SyntheticSource(0, seed=3, num_chunks=2), plan, seed=5
        )
        record_stream(path, injector)
        replayed = _drain(ReplaySource(0, path))
        clean = _drain(SyntheticSource(0, seed=3, num_chunks=2))
        assert any(
            r.payload.data != c.payload.data
            for r, c in zip(replayed, clean)
        )

    def test_missing_recording_rejected(self, tmp_path):
        with pytest.raises(IngestError):
            ReplaySource(0, tmp_path / "nope.npz")


class TestFaultInjector:
    def test_plan_validation(self):
        with pytest.raises(IngestError):
            FaultPlan(drop=1.5)
        with pytest.raises(IngestError):
            FaultPlan(max_flips=0)
        with pytest.raises(IngestError):
            FaultPlan(stall_seconds=-1.0)

    def test_deterministic_damage(self):
        def run():
            injector = FaultInjector(
                SyntheticSource(1, seed=21, num_chunks=6),
                FaultPlan(bit_flip=0.5, max_flips=2, drop=0.3,
                          duplicate=0.3, stall=0.3),
                seed=derive_seed(21, "faults-1"),
            )
            return [
                (c.seq, c.payload.data, c.stall_seconds) for c in injector
            ]

        assert run() == run()

    def test_delivery_accounting(self):
        injector = FaultInjector(
            SyntheticSource(1, seed=22, num_chunks=20),
            FaultPlan(drop=0.4, duplicate=0.3),
            seed=7,
        )
        delivered = _drain(injector)
        unique = {c.seq for c in delivered}
        assert injector.chunks_offered == 20
        assert len(unique) == 20 - injector.chunks_dropped
        assert len(delivered) == (
            20 - injector.chunks_dropped + injector.chunks_duplicated
        )
        # Dropped keyframes reconcile against the truth counters.
        per_seq = {c.seq: c.expected_keyframes for c in delivered}
        assert injector.keyframes_dropped == (
            injector.keyframes_offered - sum(per_seq.values())
        )

    def test_header_survives_protected_flips(self):
        from repro.codec.resync import resilient_dc_scan

        injector = FaultInjector(
            SyntheticSource(0, seed=23, num_chunks=5),
            FaultPlan(bit_flip=1.0, max_flips=8),
            seed=3,
        )
        for chunk in injector:
            # Header intact: the scan never raises (it may find damage).
            scan = resilient_dc_scan(chunk.payload)
            assert scan.keyframes_decoded <= chunk.expected_keyframes
        assert injector.bits_flipped > 0

    def test_duplicates_share_seq(self):
        injector = FaultInjector(
            SyntheticSource(0, seed=24, num_chunks=12),
            FaultPlan(duplicate=1.0),
            seed=9,
        )
        delivered = _drain(injector)
        assert injector.chunks_duplicated == 12
        assert len(delivered) == 24
        seqs = [c.seq for c in delivered]
        assert seqs == sorted(seqs)
        assert {seqs.count(s) for s in set(seqs)} == {2}
