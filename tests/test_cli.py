"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.stream == "vs2"
        assert args.hashes == 400
        assert args.threshold == 0.7

    def test_sweep_args(self):
        args = build_parser().parse_args(
            ["sweep", "threshold", "0.5", "0.7", "0.9"]
        )
        assert args.parameter == "threshold"
        assert args.values == [0.5, 0.7, 0.9]

    def test_inspect_args(self):
        args = build_parser().parse_args(["inspect", "--motion", "--gop", "6"])
        assert args.motion is True
        assert args.gop == 6

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workers == 2
        assert args.backend == "serial"
        assert args.policy == "block"
        assert args.resume is False

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_rejects_bad_sweep_parameter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "nonsense", "1"])


class TestCommands:
    def test_inspect_runs(self, capsys):
        exit_code = main(["inspect", "--seconds", "3", "--quality", "60"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Bitstream report" in output
        assert "compression" in output

    def test_inspect_motion_runs(self, capsys):
        exit_code = main(
            ["inspect", "--seconds", "2", "--motion", "--gop", "4"]
        )
        assert exit_code == 0
        assert "motion-compensated" in capsys.readouterr().out

    @pytest.mark.slow
    def test_demo_runs(self, capsys):
        exit_code = main(
            ["demo", "--stream", "vs1", "--queries", "3",
             "--stream-seconds", "300", "--hashes", "128"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Detections" in output
        assert "precision=" in output

    def test_serve_resume_requires_checkpoint_dir(self, capsys):
        assert main(["serve", "--resume"]) == 2

    @pytest.mark.slow
    def test_serve_stop_and_resume(self, capsys, tmp_path):
        """Interrupted service + --resume reproduces the full-run output."""
        base = ["serve", "--stream", "vs1", "--queries", "3",
                "--stream-seconds", "240", "--hashes", "64",
                "--chunk-seconds", "30", "--workers", "2"]
        assert main(base) == 0
        full = capsys.readouterr().out.splitlines()[-1]
        assert full.startswith("matches=")

        ckpt = ["--checkpoint-dir", str(tmp_path)]
        assert main(base + ckpt + ["--stop-after", "3"]) == 0
        assert "--resume to continue" in capsys.readouterr().out
        assert main(base + ckpt + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "resumed from chunk 3" in resumed
        assert resumed.splitlines()[-1] == full

    @pytest.mark.slow
    def test_sweep_runs(self, capsys):
        exit_code = main(
            ["sweep", "threshold", "0.5", "0.9", "--stream", "vs1",
             "--queries", "3", "--stream-seconds", "300"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "precision:" in output
        assert "recall:" in output
        assert "cpu_seconds:" in output


class TestIngestCommand:
    def test_ingest_defaults(self):
        args = build_parser().parse_args(["ingest"])
        assert args.streams == 3
        assert args.faults == "light"
        assert args.policy == "round_robin"
        assert args.degrade == "skip_window"
        assert args.pool == 0

    def test_ingest_rejects_bad_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingest", "--faults", "extreme"])

    def test_ingest_clean_run(self, capsys, tmp_path):
        metrics = tmp_path / "ingest.json"
        exit_code = main([
            "ingest", "--streams", "2", "--chunks", "4",
            "--faults", "none", "--metrics-out", str(metrics),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Ingestion report" in output
        assert "unprocessed=0" in output
        import json

        snapshot = json.loads(metrics.read_text())
        assert snapshot["schema"] == "repro.ingest/1"
        assert len(snapshot["streams"]) == 2
        assert snapshot["reconciliation"]["unprocessed"] == 0

    def test_ingest_chaos_run_survives(self, capsys):
        exit_code = main([
            "ingest", "--streams", "2", "--chunks", "5",
            "--faults", "heavy", "--policy", "deficit", "--pool", "2",
        ])
        assert exit_code == 0
        assert "Ingestion report" in capsys.readouterr().out
