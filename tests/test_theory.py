"""Tests for the analytical estimator-theory helpers, validated against
Monte-Carlo runs of the real sketches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SketchError
from repro.minhash.family import MinHashFamily
from repro.minhash.theory import (
    estimator_stddev,
    false_negative_probability,
    false_positive_probability,
    required_hashes,
)


class TestStddev:
    def test_formula(self):
        assert estimator_stddev(0.5, 100) == pytest.approx(0.05)
        assert estimator_stddev(0.0, 100) == 0.0
        assert estimator_stddev(1.0, 100) == 0.0

    def test_decreases_with_k(self):
        assert estimator_stddev(0.3, 400) < estimator_stddev(0.3, 100)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SketchError):
            estimator_stddev(1.5, 100)
        with pytest.raises(SketchError):
            estimator_stddev(0.5, 0)

    def test_matches_monte_carlo(self):
        """Predicted sigma matches the empirical spread of real sketches."""
        a = list(range(60))
        b = list(range(30, 90))  # J = 1/3
        num_hashes = 96
        estimates = [
            MinHashFamily(num_hashes=num_hashes, seed=s).sketch(a).similarity(
                MinHashFamily(num_hashes=num_hashes, seed=s).sketch(b)
            )
            for s in range(60)
        ]
        predicted = estimator_stddev(1.0 / 3.0, num_hashes)
        assert np.std(estimates) == pytest.approx(predicted, rel=0.4)


class TestTailBounds:
    def test_false_positive_shrinks_with_k(self):
        loose = false_positive_probability(0.4, 0.7, 50)
        tight = false_positive_probability(0.4, 0.7, 500)
        assert tight < loose

    def test_false_positive_at_threshold_is_one(self):
        assert false_positive_probability(0.7, 0.7, 100) == 1.0

    def test_false_negative_mirror(self):
        assert false_negative_probability(0.6, 0.7, 100) == 1.0
        assert false_negative_probability(0.9, 0.7, 400) < 1e-10

    def test_bounds_hold_empirically(self):
        """The Hoeffding bound really does bound the real sketches'
        false-positive rate (J = 0.5 against δ = 0.7)."""
        a = list(range(60))
        b = list(range(20, 80))  # J = 0.5
        num_hashes = 64
        threshold = 0.7
        trials = 80
        false_positives = sum(
            MinHashFamily(num_hashes=num_hashes, seed=s).sketch(a).similarity(
                MinHashFamily(num_hashes=num_hashes, seed=s).sketch(b)
            )
            >= threshold
            for s in range(trials)
        )
        bound = false_positive_probability(0.5, threshold, num_hashes)
        assert false_positives / trials <= bound + 0.05

    def test_rejects_bad_threshold(self):
        with pytest.raises(SketchError):
            false_positive_probability(0.5, 1.5, 100)


class TestRequiredHashes:
    def test_reference_value(self):
        # ln(100) / (2 * 0.01) = 230.26 -> 231.
        assert required_hashes(0.1, 0.01) == 231

    def test_tighter_margin_needs_more(self):
        assert required_hashes(0.05) > required_hashes(0.2)

    def test_lower_error_needs_more(self):
        assert required_hashes(0.1, 0.001) > required_hashes(0.1, 0.1)

    def test_guarantee_holds(self):
        """At the recommended K, misclassification stays below target."""
        margin, p = 0.15, 0.05
        num_hashes = required_hashes(margin, p)
        assert false_positive_probability(0.7 - margin, 0.7, num_hashes) <= p
        assert false_negative_probability(0.7 + margin, 0.7, num_hashes) <= p

    def test_rejects_bad_inputs(self):
        with pytest.raises(SketchError):
            required_hashes(0.0)
        with pytest.raises(SketchError):
            required_hashes(0.1, 1.0)
