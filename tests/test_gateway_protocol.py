"""The ``repro.wire/1`` frame codec: round-trips and rejection paths."""

import json
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gateway.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameCorrupt,
    FrameReader,
    FrameTooLarge,
    WIRE_FORMAT,
    decode_frame,
    encode_frame,
)

_U32 = struct.Struct("!I")

_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(1 << 53), 1 << 53),
    st.text(max_size=40),
)

_headers = st.fixed_dictionaries(
    {"type": st.text(min_size=1, max_size=20)},
    optional={
        "seq": st.integers(0, 1 << 40),
        "note": _json_scalars,
        "nested": st.dictionaries(
            st.text(min_size=1, max_size=10), _json_scalars, max_size=4
        ),
    },
)

_dtypes = st.sampled_from(["<i8", "<i4", "<f8", "<f4", "<u1", ">i8"])

_payloads = st.one_of(
    st.none(),
    st.tuples(
        _dtypes, st.integers(0, 64), st.integers(0, 10_000)
    ).map(
        lambda spec: (
            np.arange(spec[1], dtype=np.int64) + spec[2]
        ).astype(np.dtype(spec[0]))
    ),
    # 2-D payloads exercise the shape descriptor.
    st.tuples(st.integers(0, 8), st.integers(1, 8)).map(
        lambda hw: np.arange(hw[0] * hw[1], dtype=np.int64).reshape(hw)
    ),
)


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(header=_headers, payload=_payloads)
    def test_encode_decode_identity(self, header, payload):
        wire = encode_frame(header, payload)
        got_header, got_payload, consumed = decode_frame(wire)
        assert consumed == len(wire)
        expected = dict(header)
        expected.pop("payload", None)
        if payload is None:
            assert got_payload is None
        else:
            assert got_payload.dtype == payload.dtype
            assert got_payload.shape == payload.shape
            np.testing.assert_array_equal(got_payload, payload)
            expected["payload"] = {
                "dtype": payload.dtype.str,
                "shape": list(payload.shape),
            }
        assert got_header == expected

    @settings(max_examples=30, deadline=None)
    @given(
        frames=st.lists(
            st.tuples(_headers, _payloads), min_size=1, max_size=6
        ),
        chunk_size=st.integers(1, 64),
    )
    def test_reader_reassembles_any_chunking(self, frames, chunk_size):
        wire = b"".join(encode_frame(h, p) for h, p in frames)
        reader = FrameReader()
        decoded = []
        for start in range(0, len(wire), chunk_size):
            decoded.extend(reader.feed(wire[start : start + chunk_size]))
        assert len(decoded) == len(frames)
        assert reader.frames_decoded == len(frames)
        assert reader.buffered == 0
        for (header, payload), (got_header, got_payload) in zip(
            frames, decoded
        ):
            assert got_header["type"] == header["type"]
            if payload is None:
                assert got_payload is None
            else:
                np.testing.assert_array_equal(got_payload, payload)

    def test_decoded_payload_owns_its_memory(self):
        wire = encode_frame({"type": "chunk"}, np.arange(8))
        _, payload, _ = decode_frame(wire)
        payload[0] = 99  # must not raise: the buffer was copied


class TestRejection:
    @settings(max_examples=40, deadline=None)
    @given(header=_headers, payload=_payloads, cut=st.integers(1, 200))
    def test_truncated_frame_rejected_by_decode(self, header, payload, cut):
        wire = encode_frame(header, payload)
        truncated = wire[: max(0, len(wire) - cut)]
        with pytest.raises(FrameCorrupt):
            decode_frame(truncated)

    @settings(max_examples=40, deadline=None)
    @given(header=_headers, payload=_payloads, data=st.data())
    def test_bit_flip_fails_crc(self, header, payload, data):
        wire = bytearray(encode_frame(header, payload))
        # Flip one bit anywhere past the length prefix: body or CRC.
        pos = data.draw(st.integers(_U32.size, len(wire) - 1))
        bit = data.draw(st.integers(0, 7))
        wire[pos] ^= 1 << bit
        with pytest.raises(FrameCorrupt):
            FrameReader().feed(bytes(wire))

    def test_oversized_announcement_rejected_before_buffering(self):
        guard = 1024
        reader = FrameReader(max_frame_bytes=guard)
        with pytest.raises(FrameTooLarge):
            # Only the 4-byte length prefix arrives; the reader must
            # reject from the announcement alone.
            reader.feed(_U32.pack(guard + 1))
        assert reader.buffered <= _U32.size

    def test_encode_respects_the_guard_too(self):
        with pytest.raises(FrameTooLarge):
            encode_frame(
                {"type": "chunk"},
                np.zeros(1024, dtype=np.int64),
                max_frame_bytes=256,
            )

    def test_reader_poisons_after_framing_error(self):
        good = encode_frame({"type": "ok"})
        bad = bytearray(good)
        bad[-1] ^= 0xFF
        reader = FrameReader()
        with pytest.raises(FrameCorrupt):
            reader.feed(bytes(bad))
        with pytest.raises(FrameCorrupt):
            reader.feed(good)  # unrecoverable: stays poisoned

    def test_payload_bytes_without_descriptor_rejected(self):
        header_json = json.dumps({"type": "x"}).encode()
        body = _U32.pack(len(header_json)) + header_json + b"stray"
        wire = _U32.pack(len(body)) + body + _U32.pack(zlib.crc32(body))
        with pytest.raises(FrameCorrupt):
            decode_frame(wire)

    def test_descriptor_size_mismatch_rejected(self):
        wire = bytearray(encode_frame({"type": "chunk"}, np.arange(4)))
        # Rewrite the body, claiming 8 elements while carrying 4.
        (body_len,) = _U32.unpack_from(wire)
        body = bytearray(wire[_U32.size : _U32.size + body_len])
        (header_len,) = _U32.unpack_from(body)
        header = json.loads(bytes(body[_U32.size : _U32.size + header_len]))
        header["payload"]["shape"] = [8]
        new_header = json.dumps(header, separators=(",", ":")).encode()
        new_body = (
            _U32.pack(len(new_header))
            + new_header
            + bytes(body[_U32.size + header_len :])
        )
        rewritten = (
            _U32.pack(len(new_body))
            + new_body
            + _U32.pack(zlib.crc32(new_body))
        )
        with pytest.raises(FrameCorrupt):
            decode_frame(rewritten)

    def test_header_must_be_object_with_type(self):
        for bad_header in (b"[1,2]", b'"str"', b'{"no_type":1}', b"{bad"):
            body = _U32.pack(len(bad_header)) + bad_header
            wire = (
                _U32.pack(len(body)) + body + _U32.pack(zlib.crc32(body))
            )
            with pytest.raises(FrameCorrupt):
                decode_frame(wire)


class TestVersionNegotiation:
    def test_server_rejects_unknown_wire_format(self):
        from repro.gateway import GatewayClosed, GatewayConnection
        from tests.test_gateway import make_service  # shared fixture helper

        from repro.gateway.server import GatewayServer

        service = make_service()
        handle = GatewayServer(service).run_in_thread()
        try:
            conn = GatewayConnection("127.0.0.1", handle.port)
            conn.send({
                "type": "hello", "proto": "repro.wire/99", "role": "admin",
            })
            with pytest.raises(GatewayClosed):
                while True:
                    header, _ = conn.recv()
                    if header["type"] == "error":
                        assert WIRE_FORMAT in header["supported"]
                        break
                conn.recv()  # server closes after the rejection
        finally:
            handle.stop(drain=False, flush=False)
            service.close()

    def test_default_guard_is_sane(self):
        assert DEFAULT_MAX_FRAME_BYTES >= 1 << 20
        assert WIRE_FORMAT == "repro.wire/1"
