"""Tests for the bottom-k (KMV) alternative sketch."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.membership import jaccard_similarity
from repro.errors import SketchError
from repro.minhash.bottomk import BottomKFamily, BottomKSketch


@pytest.fixture()
def bk_family():
    return BottomKFamily(k=64, seed=3)


class TestBottomKFamily:
    def test_deterministic(self):
        a = BottomKFamily(k=16, seed=1).sketch([1, 2, 3])
        b = BottomKFamily(k=16, seed=1).sketch([1, 2, 3])
        assert np.array_equal(a.values, b.values)

    def test_seed_changes_values(self):
        a = BottomKFamily(k=16, seed=1).sketch(range(100))
        b = BottomKFamily(k=16, seed=2).sketch(range(100))
        assert not np.array_equal(a.values, b.values)

    def test_capacity(self, bk_family):
        sketch = bk_family.sketch(range(1000))
        assert sketch.values.shape[0] == 64
        assert (np.diff(sketch.values) > 0).all()

    def test_small_set_keeps_all(self, bk_family):
        sketch = bk_family.sketch([5, 9, 12])
        assert sketch.values.shape[0] == 3

    def test_empty_set(self, bk_family):
        sketch = bk_family.sketch([])
        assert sketch.values.shape[0] == 0

    def test_duplicates_ignored(self, bk_family):
        assert np.array_equal(
            bk_family.sketch([7, 7, 7, 9]).values,
            bk_family.sketch([7, 9]).values,
        )

    def test_rejects_bad_k(self):
        with pytest.raises(SketchError):
            BottomKFamily(k=0)

    def test_rejects_out_of_domain(self, bk_family):
        with pytest.raises(SketchError):
            bk_family.sketch([-1])


class TestBottomKSketch:
    def test_combine_is_union_sketch(self, bk_family):
        a = bk_family.sketch(range(0, 50))
        b = bk_family.sketch(range(30, 90))
        union = bk_family.sketch(range(0, 90))
        assert np.array_equal(a.combine(b).values, union.values)

    def test_combine_associative_idempotent(self, bk_family):
        a = bk_family.sketch(range(0, 30))
        b = bk_family.sketch(range(20, 60))
        c = bk_family.sketch(range(50, 80))
        assert np.array_equal(
            a.combine(b).combine(c).values, a.combine(b.combine(c)).values
        )
        assert np.array_equal(a.combine(a).values, a.values)

    def test_self_similarity(self, bk_family):
        sketch = bk_family.sketch(range(200))
        assert sketch.similarity(sketch) == 1.0

    def test_disjoint_similarity(self):
        family = BottomKFamily(k=128, seed=5)
        a = family.sketch(range(0, 100))
        b = family.sketch(range(10_000, 10_100))
        assert a.similarity(b) < 0.05

    def test_cross_family_rejected(self):
        a = BottomKFamily(k=8, seed=1).sketch([1])
        b = BottomKFamily(k=8, seed=2).sketch([1])
        with pytest.raises(SketchError):
            a.similarity(b)

    def test_unsorted_values_rejected(self):
        with pytest.raises(SketchError):
            BottomKSketch(
                values=np.array([5, 3], dtype=np.int64), k=4, family=(4, 0)
            )

    @settings(max_examples=20, deadline=None)
    @given(
        st.sets(st.integers(0, 3000), min_size=20, max_size=150),
        st.sets(st.integers(0, 3000), min_size=20, max_size=150),
    )
    def test_kmv_estimator_tracks_jaccard(self, set_a, set_b):
        family = BottomKFamily(k=512, seed=7)
        exact = jaccard_similarity(sorted(set_a), sorted(set_b))
        estimate = family.sketch(sorted(set_a)).similarity(
            family.sketch(sorted(set_b))
        )
        assert abs(estimate - exact) < 0.15

    def test_estimator_mean_unbiased(self):
        a = list(range(60))
        b = list(range(30, 90))
        exact = jaccard_similarity(a, b)
        estimates = [
            BottomKFamily(k=48, seed=s).sketch(a).similarity(
                BottomKFamily(k=48, seed=s).sketch(b)
            )
            for s in range(30)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.05)
