"""Golden equivalence: columnar engines vs the scalar reference.

The columnar (``vectorized=True``) engines promise bit-for-bit identical
behaviour to the scalar reference implementations: the same Match
stream (same similarities, computed through the same float operations),
the same counters — including ``signature_prunes`` and
``expired_candidates`` — and the same maintained-state distributions.
This suite drives both implementations through randomized workloads
(hypothesis) covering mid-stream subscribe/unsubscribe, partial tail
windows and threshold edge cases, for both combination orders, both
representations, and with the Hash-Query index on and off.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.core.detector import StreamingDetector
from repro.core.query import Query, QuerySet
from repro.minhash.family import MinHashFamily

CELL_SPACE = 500  # small id space -> plenty of sketch collisions
NUM_HASHES = 32
WINDOW_SECONDS = 2.5
KEYFRAMES_PER_SECOND = 2.0  # w = 5 key frames

ALL_MODES = [
    pytest.param(order, representation, use_index,
                 id=f"{order.value}-{representation.value}-"
                    f"{'idx' if use_index else 'noidx'}")
    for order in CombinationOrder
    for representation in Representation
    for use_index in (False, True)
]


def _match_key(match):
    return (
        match.qid,
        match.window_index,
        match.start_frame,
        match.end_frame,
        match.similarity,
    )


def _distribution_summary(registry, name):
    dist = registry.distribution(name)
    return (dist.mean, dist.minimum, dist.maximum)


@st.composite
def workloads(draw):
    """A full detector session: queries, stream chunks, churn actions."""
    family_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    num_queries = draw(st.integers(1, 4))
    queries = {}
    frames = {}
    for qid in range(num_queries):
        n = draw(st.integers(8, 40))
        queries[qid] = rng.integers(0, CELL_SPACE, size=n)
        frames[qid] = n

    threshold = draw(
        st.sampled_from([0.05, 0.3, 0.5, 0.7, 0.9, 1.0])
    )

    # Stream chunks with churn actions in between. Only the last chunk
    # may end mid-window (the detector rejects frames after a partial
    # tail), so every non-final chunk is a whole number of windows.
    window_frames = round(WINDOW_SECONDS * KEYFRAMES_PER_SECOND)
    num_chunks = draw(st.integers(1, 3))
    chunks = []
    actions = []
    next_qid = num_queries
    alive = set(queries)
    for position in range(num_chunks):
        final = position == num_chunks - 1
        num_windows = draw(st.integers(1, 12))
        length = num_windows * window_frames
        if final and draw(st.booleans()):
            length += draw(st.integers(1, window_frames - 1))  # partial
        chunk = rng.integers(0, CELL_SPACE, size=length)
        # Sometimes splice a query copy in, so matches actually happen.
        if alive and draw(st.booleans()):
            victim = draw(st.sampled_from(sorted(alive)))
            copy = np.asarray(queries[victim])[: length]
            at = draw(st.integers(0, length - copy.size))
            chunk[at : at + copy.size] = copy
        chunks.append(chunk)
        if final:
            break
        action = draw(st.sampled_from(["none", "subscribe", "unsubscribe"]))
        if action == "subscribe":
            n = draw(st.integers(8, 40))
            queries[next_qid] = rng.integers(0, CELL_SPACE, size=n)
            frames[next_qid] = n
            alive.add(next_qid)
            actions.append(("subscribe", next_qid))
            next_qid += 1
        elif action == "unsubscribe" and len(alive) >= 2:
            # QuerySet refuses to drop its last query.
            victim = draw(st.sampled_from(sorted(alive)))
            alive.discard(victim)
            actions.append(("unsubscribe", victim))
        else:
            actions.append(("none", -1))
    return family_seed, queries, frames, threshold, chunks, actions


def _run_session(config, family, queries, frames, chunks, actions):
    # Only the originally numbered queries are subscribed up front; the
    # rest arrive through subscribe actions.
    subscribed_first = [
        qid for qid in queries if ("subscribe", qid) not in actions
    ]
    query_set = QuerySet.from_cell_ids(
        {qid: queries[qid] for qid in subscribed_first},
        {qid: frames[qid] for qid in subscribed_first},
        family,
    )
    detector = StreamingDetector(config, query_set, KEYFRAMES_PER_SECOND)
    for position, chunk in enumerate(chunks):
        detector.process_cell_ids(chunk)
        if position < len(actions):
            kind, qid = actions[position]
            if kind == "subscribe":
                distinct = np.unique(np.asarray(queries[qid], dtype=np.int64))
                detector.subscribe(
                    Query(
                        qid=qid,
                        cell_ids=distinct,
                        num_frames=frames[qid],
                        sketch=family.sketch(distinct),
                    )
                )
            elif kind == "unsubscribe":
                detector.unsubscribe(qid)
    return detector


def _assert_equivalent(reference, columnar):
    assert sorted(map(_match_key, reference.matches)) == sorted(
        map(_match_key, columnar.matches)
    )
    ref_counters = dict(reference.registry.counters())
    col_counters = dict(columnar.registry.counters())
    assert ref_counters == col_counters
    # The ISSUE-critical counters, named for a readable failure:
    assert reference.stats.signature_prunes == columnar.stats.signature_prunes
    assert (
        reference.stats.expired_candidates
        == columnar.stats.expired_candidates
    )
    for name in (
        "engine.signatures_maintained",
        "engine.candidates_maintained",
    ):
        assert _distribution_summary(
            reference.registry, name
        ) == _distribution_summary(columnar.registry, name)


@pytest.mark.parametrize("order,representation,use_index", ALL_MODES)
@settings(max_examples=25, deadline=None)
@given(workload=workloads())
def test_columnar_matches_reference(order, representation, use_index, workload):
    family_seed, queries, frames, threshold, chunks, actions = workload
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=family_seed)
    base = dict(
        num_hashes=NUM_HASHES,
        threshold=threshold,
        window_seconds=WINDOW_SECONDS,
        order=order,
        representation=representation,
        use_index=use_index,
    )
    reference = _run_session(
        DetectorConfig(**base, vectorized=False),
        family, queries, frames, chunks, actions,
    )
    columnar = _run_session(
        DetectorConfig(**base, vectorized=True),
        family, queries, frames, chunks, actions,
    )
    _assert_equivalent(reference, columnar)


@pytest.mark.parametrize("order,representation,use_index", ALL_MODES)
def test_columnar_exact_threshold_tie(order, representation, use_index):
    """A candidate whose similarity lands exactly on δ emits in both."""
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=11)
    rng = np.random.default_rng(5)
    queries = {0: rng.integers(0, CELL_SPACE, size=30),
               1: rng.integers(0, CELL_SPACE, size=24)}
    frames = {0: 30, 1: 24}
    stream = rng.integers(0, CELL_SPACE, size=60)
    stream[10:40] = np.asarray(queries[0])
    # Sweep thresholds across every attainable similarity level i/K so
    # some run ties exactly (similarities are multiples of 1/K).
    for level in range(0, NUM_HASHES + 1, 4):
        threshold = max(level, 1) / NUM_HASHES
        base = dict(
            num_hashes=NUM_HASHES,
            threshold=threshold,
            window_seconds=WINDOW_SECONDS,
            order=order,
            representation=representation,
            use_index=use_index,
        )
        reference = _run_session(
            DetectorConfig(**base, vectorized=False),
            family, queries, frames, [stream], [],
        )
        columnar = _run_session(
            DetectorConfig(**base, vectorized=True),
            family, queries, frames, [stream], [],
        )
        _assert_equivalent(reference, columnar)


@pytest.mark.parametrize("order,representation", [
    pytest.param(order, representation,
                 id=f"{order.value}-{representation.value}")
    for order in CombinationOrder
    for representation in Representation
])
def test_columnar_partial_tail_window(order, representation):
    """A stream ending mid-window produces identical state and matches."""
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=23)
    rng = np.random.default_rng(9)
    queries = {0: rng.integers(0, CELL_SPACE, size=20)}
    frames = {0: 20}
    stream = rng.integers(0, CELL_SPACE, size=23)  # 4 windows + 3 frames
    base = dict(
        num_hashes=NUM_HASHES,
        threshold=0.3,
        window_seconds=WINDOW_SECONDS,
        order=order,
        representation=representation,
        use_index=False,
    )
    reference = _run_session(
        DetectorConfig(**base, vectorized=False),
        family, queries, frames, [stream], [],
    )
    columnar = _run_session(
        DetectorConfig(**base, vectorized=True),
        family, queries, frames, [stream], [],
    )
    assert reference.stats.partial_windows == 1
    assert columnar.stats.partial_windows == 1
    _assert_equivalent(reference, columnar)
