"""Scheduler equivalence and chaos-survival tests.

The acceptance bar for the ingestion layer:

* a clean N-stream scheduler run is bit-for-bit identical, per stream
  and including order, to N independent single-stream runs — for both
  scheduling policies and with a real detector pool;
* under single-bit corruption, every intact GOP after resync is still
  decoded and matched at its true stream position;
* under aggressive fault injection no exception reaches the scheduler
  loop, and the frame accounting reconciles exactly with what the
  sources offered.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import QuerySet
from repro.errors import IngestError
from repro.features.pipeline import FingerprintExtractor
from repro.ingest import (
    CellIdSource,
    DegradationPolicy,
    EncodedChunkSource,
    FAULT_PRESETS,
    FaultInjector,
    SchedulingPolicy,
    StreamScheduler,
    StreamSession,
    SyntheticSource,
)
from repro.minhash.family import MinHashFamily
from repro.serve.checkpoint import CheckpointManager
from repro.utils.rng import derive_seed

CELL_SPACE = 500
NUM_HASHES = 32
WINDOW_SECONDS = 2.5
KEYFRAMES_PER_SECOND = 2.0  # w = 5 key frames


def _match_key(match):
    return (
        match.qid,
        match.window_index,
        match.start_frame,
        match.end_frame,
        match.similarity,
    )


def _query_set(queries, frames, family_seed):
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=family_seed)
    return QuerySet.from_cell_ids(queries, frames, family)


def _single_stream_matches(config, queries, frames, family_seed, chunks):
    detector = StreamingDetector(
        config, _query_set(queries, frames, family_seed),
        KEYFRAMES_PER_SECOND,
    )
    monitor = LiveMonitor(detector)
    matches = []
    for chunk in chunks:
        matches.extend(monitor.push_cell_ids(chunk))
    matches.extend(monitor.flush())
    return matches


@st.composite
def fleets(draw):
    """N cell-id streams with occasional planted query copies."""
    family_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    num_queries = draw(st.integers(2, 4))
    queries = {}
    frames = {}
    for qid in range(num_queries):
        n = draw(st.integers(8, 30))
        queries[qid] = rng.integers(0, CELL_SPACE, size=n)
        frames[qid] = n
    threshold = draw(st.sampled_from([0.05, 0.3, 0.6, 0.9]))
    num_streams = draw(st.integers(1, 3))
    streams = []
    for _ in range(num_streams):
        num_chunks = draw(st.integers(1, 4))
        chunks = []
        for _ in range(num_chunks):
            length = draw(st.integers(3, 30))
            chunk = rng.integers(0, CELL_SPACE, size=length)
            if draw(st.booleans()):
                victim = draw(st.sampled_from(sorted(queries)))
                copy = np.asarray(queries[victim])[:length]
                at = draw(st.integers(0, length - copy.size))
                chunk[at : at + copy.size] = copy
            chunks.append(chunk)
        streams.append(chunks)
    return family_seed, queries, frames, threshold, streams


def _build_scheduler(config, queries, frames, family_seed, streams,
                     policy, pool_size):
    pairs = []
    for stream_id, chunks in enumerate(streams):
        session = StreamSession(
            stream_id, config,
            _query_set(queries, frames, family_seed),
            KEYFRAMES_PER_SECOND,
        )
        pairs.append((CellIdSource(stream_id, chunks), session))
    return StreamScheduler(
        pairs, policy=policy, pool_size=pool_size, queue_capacity=2
    )


@pytest.mark.parametrize(
    "policy,pool_size",
    [
        (SchedulingPolicy.ROUND_ROBIN, 0),
        (SchedulingPolicy.ROUND_ROBIN, 2),
        (SchedulingPolicy.DEFICIT, 0),
        (SchedulingPolicy.DEFICIT, 2),
    ],
    ids=["rr-inline", "rr-pool", "drr-inline", "drr-pool"],
)
@settings(max_examples=10, deadline=None)
@given(fleet=fleets())
def test_scheduler_equals_independent_runs(policy, pool_size, fleet):
    """Multiplexing is transparent: per-stream output is bit-for-bit the
    single-stream detector's, including order."""
    family_seed, queries, frames, threshold, streams = fleet
    config = DetectorConfig(
        num_hashes=NUM_HASHES,
        threshold=threshold,
        window_seconds=WINDOW_SECONDS,
    )
    scheduler = _build_scheduler(
        config, queries, frames, family_seed, streams, policy, pool_size
    )
    by_stream = scheduler.run()
    for stream_id, chunks in enumerate(streams):
        expected = _single_stream_matches(
            config, queries, frames, family_seed, chunks
        )
        assert [_match_key(m) for m in by_stream[stream_id]] == [
            _match_key(m) for m in expected
        ], f"stream {stream_id} diverged"
    recon = scheduler.reconciliation()
    assert recon["unprocessed"] == 0
    assert recon["frames_offered"] == sum(
        sum(len(c) for c in chunks) for chunks in streams
    )


def _encoded_stream(stream_id, seed, num_chunks, copy_chunk, query_clip):
    source = SyntheticSource(
        stream_id, seed, num_chunks, copies={copy_chunk: query_clip}
    )
    return [source.encode_chunk(index) for index in range(num_chunks)]


def _corrupt_keyframe_bit(encoded, keyframe_index):
    """Flip ONE bit in the type byte of the given I record, making it an
    invalid frame type (structural single-bit corruption)."""
    import dataclasses

    from repro.codec.bitstream import BitstreamReader
    from repro.codec.gop import _read_header, walk_dc_record

    reader = BitstreamReader(encoded.data)
    width, height, block_size, _q, _g, _n, _fps, entropy = _read_header(
        reader, len(encoded.data)
    )
    num_blocks = (-(-width // block_size)) * (-(-height // block_size))
    seen = 0
    for _ in range(encoded.num_frames):
        position = reader.position
        frame_type, _levels = walk_dc_record(reader, num_blocks, entropy)
        if frame_type == b"I":
            if seen == keyframe_index:
                data = bytearray(encoded.data)
                # Bit 1: b'I' (0x49) becomes 0x4B, an invalid frame
                # type (bit 2 would yield b'M', which still parses).
                data[position] ^= 0x02
                return dataclasses.replace(encoded, data=bytes(data))
            seen += 1
    raise AssertionError("keyframe not found")


def test_single_bit_corruption_intact_gops_still_match():
    """One flipped bit destroys one GOP; the planted copy in a later,
    intact chunk is still detected at its true stream position."""
    extractor = FingerprintExtractor()
    seed = 314
    from repro.ingest import INGEST_FORMAT
    from repro.video.synth import ClipSynthesizer, SynthesisConfig

    synth = ClipSynthesizer(
        SynthesisConfig(video_format=INGEST_FORMAT),
        seed=derive_seed(seed, "query"),
    )
    query_clip = synth.generate_clip(2.0, "query")
    chunks = _encoded_stream(0, seed, 5, copy_chunk=3,
                             query_clip=query_clip)
    query_ids = extractor.cell_ids_from_encoded(chunks[3])
    family = MinHashFamily(num_hashes=64, seed=0)
    queries = QuerySet.from_cell_ids(
        {1: query_ids}, {1: int(query_ids.shape[0])}, family
    )
    config = DetectorConfig(
        num_hashes=64, threshold=0.6, window_seconds=2.0
    )

    def run(payloads):
        session = StreamSession(
            0, config, queries, KEYFRAMES_PER_SECOND,
            extractor=extractor,
            policy=DegradationPolicy.SKIP_WINDOW,
            chunk_keyframes_hint=4,
        )
        scheduler = StreamScheduler(
            [(EncodedChunkSource(0, payloads), session)]
        )
        return scheduler.run()[0], session

    clean_matches, _clean = run(chunks)
    damaged = list(chunks)
    damaged[1] = _corrupt_keyframe_bit(chunks[1], 1)  # kill chunk 1 GOP 1
    damaged_matches, session = run(damaged)

    assert session.registry.counter("ingest.decode_errors") >= 1
    assert session.registry.counter("ingest.frames_damaged") >= 1
    # The copy lives in chunk 3 (frames 12..15): every clean-run match
    # there must survive the corruption with identical coordinates.
    clean_keys = {_match_key(m) for m in clean_matches}
    damaged_keys = {_match_key(m) for m in damaged_matches}
    copy_matches = {k for k in clean_keys if k[2] >= 12}
    assert copy_matches  # the planted copy was detected at all
    assert copy_matches <= damaged_keys


@pytest.mark.parametrize(
    "policy", [SchedulingPolicy.ROUND_ROBIN, SchedulingPolicy.DEFICIT]
)
def test_chaos_survival_and_reconciliation(policy):
    """Heavy faults, four streams: zero unhandled exceptions, exact
    frame accounting, populated nested metrics."""
    extractor = FingerprintExtractor()
    seed = 99
    config = DetectorConfig(
        num_hashes=32, threshold=0.7, window_seconds=2.0
    )
    family = MinHashFamily(num_hashes=32, seed=0)
    reference = SyntheticSource(0, seed, 1)
    query_ids = extractor.cell_ids_from_encoded(reference.encode_chunk(0))
    queries = QuerySet.from_cell_ids(
        {1: query_ids}, {1: int(query_ids.shape[0])}, family
    )
    pairs = []
    for stream_id in range(4):
        source = SyntheticSource(stream_id, seed, 6)
        injector = FaultInjector(
            source, FAULT_PRESETS["heavy"],
            seed=derive_seed(seed, f"faults-{stream_id}"),
        )
        session = StreamSession(
            stream_id, config, queries, KEYFRAMES_PER_SECOND,
            extractor=extractor,
            policy=DegradationPolicy.SKIP_WINDOW,
            chunk_keyframes_hint=4,
        )
        pairs.append((injector, session))
    scheduler = StreamScheduler(
        pairs, policy=policy, pool_size=2, queue_capacity=2
    )
    scheduler.run()  # must not raise

    recon = scheduler.reconciliation()
    assert recon["unprocessed"] == 0
    assert recon["frames_offered"] == 4 * 6 * 4
    assert recon["frames_offered"] == (
        recon["frames_expected"] + recon["frames_dropped_in_flight"]
    )
    assert recon["frames_expected"] == (
        recon["frames_decoded"] + recon["frames_damaged"]
    )
    # Every dropped chunk was noticed as a sequence gap (trailing drops
    # excepted — they leave no gap to observe).
    assert recon["frames_missing"] <= recon["frames_dropped_in_flight"]

    snapshot = scheduler.metrics_snapshot()
    assert snapshot["schema"] == "repro.ingest/1"
    assert len(snapshot["streams"]) == 4
    for stream_metrics in snapshot["streams"].values():
        assert stream_metrics["counters"]["ingest.chunks_processed"] >= 0


def test_fail_policy_quarantines_without_stopping_the_fleet():
    extractor = FingerprintExtractor()
    seed = 7
    config = DetectorConfig(
        num_hashes=32, threshold=0.7, window_seconds=2.0
    )
    family = MinHashFamily(num_hashes=32, seed=0)
    reference = SyntheticSource(0, seed, 1)
    query_ids = extractor.cell_ids_from_encoded(reference.encode_chunk(0))
    queries = QuerySet.from_cell_ids(
        {1: query_ids}, {1: int(query_ids.shape[0])}, family
    )
    pairs = []
    for stream_id in range(2):
        source = SyntheticSource(stream_id, seed, 5)
        payloads = [source.encode_chunk(index) for index in range(5)]
        if stream_id == 0:
            # Deterministic structural damage in chunk 1.
            payloads[1] = _corrupt_keyframe_bit(payloads[1], 1)
        feed = EncodedChunkSource(stream_id, payloads)
        session = StreamSession(
            stream_id, config, queries, KEYFRAMES_PER_SECOND,
            extractor=extractor, policy=DegradationPolicy.FAIL,
        )
        pairs.append((feed, session))
    scheduler = StreamScheduler(pairs)
    matches = scheduler.run()
    failed = [s for _, s in pairs if s.failed]
    intact = [s for _, s in pairs if not s.failed]
    assert failed and intact  # stream 0 quarantined, stream 1 completed
    assert intact[0].registry.counter("ingest.chunks_processed") == 5
    assert isinstance(matches, dict)


def test_checkpoint_restore_resumes_identically(tmp_path):
    extractor = FingerprintExtractor()
    seed = 55
    config = DetectorConfig(
        num_hashes=64, threshold=0.6, window_seconds=2.0
    )
    family = MinHashFamily(num_hashes=64, seed=0)
    source = SyntheticSource(0, seed, 6)
    query_ids = extractor.cell_ids_from_encoded(source.encode_chunk(4))
    queries = QuerySet.from_cell_ids(
        {1: query_ids}, {1: int(query_ids.shape[0])}, family
    )

    def chunk(seq):
        from repro.ingest import StreamChunk

        return StreamChunk(0, seq, source.encode_chunk(seq))

    uninterrupted = StreamSession(
        0, config, queries, KEYFRAMES_PER_SECOND, extractor=extractor
    )
    for seq in range(6):
        uninterrupted.process_chunk(chunk(seq))
    uninterrupted.finish()

    first = StreamSession(
        0, config, queries, KEYFRAMES_PER_SECOND, extractor=extractor
    )
    for seq in range(3):
        first.process_chunk(chunk(seq))
    manager = CheckpointManager(tmp_path)
    path = first.checkpoint(manager)

    resumed = StreamSession.restore(
        manager, 0, config, extractor=extractor, path=path
    )
    assert resumed.chunks_ingested == 3
    for seq in range(3, 6):
        resumed.process_chunk(chunk(seq))
    resumed.finish()

    assert [_match_key(m) for m in resumed.matches] == [
        _match_key(m) for m in uninterrupted.matches
    ]
    assert (
        resumed.detector.frames_processed
        == uninterrupted.detector.frames_processed
    )


class TestSchedulerValidation:
    def _session(self, stream_id):
        family = MinHashFamily(num_hashes=16, seed=0)
        queries = QuerySet.from_cell_ids(
            {1: np.arange(8)}, {1: 8}, family
        )
        config = DetectorConfig(
            num_hashes=16, threshold=0.5, window_seconds=2.0
        )
        return StreamSession(
            stream_id, config, queries, KEYFRAMES_PER_SECOND
        )

    def test_empty_fleet_rejected(self):
        with pytest.raises(IngestError):
            StreamScheduler([])

    def test_mismatched_pair_rejected(self):
        with pytest.raises(IngestError):
            StreamScheduler(
                [(CellIdSource(0, [np.arange(4)]), self._session(1))]
            )

    def test_duplicate_stream_ids_rejected(self):
        pairs = [
            (CellIdSource(0, [np.arange(4)]), self._session(0)),
            (CellIdSource(0, [np.arange(4)]), self._session(0)),
        ]
        with pytest.raises(IngestError):
            StreamScheduler(pairs)

    def test_nonpositive_weight_rejected(self):
        pairs = [(CellIdSource(0, [np.arange(4)]), self._session(0))]
        with pytest.raises(IngestError):
            StreamScheduler(
                pairs, policy=SchedulingPolicy.DEFICIT, weights={0: 0.0}
            )
