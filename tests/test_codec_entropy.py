"""Tests for exp-Golomb entropy coding and the entropy-coded bitstream."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.entropy import (
    BitReader,
    BitWriter,
    decode_block_scan,
    encode_block_scan,
    skip_block_scan_keep_dc,
)
from repro.codec.gop import decode_dc_coefficients, decode_video, encode_video
from repro.errors import BitstreamError


class TestBitIO:
    def test_bit_roundtrip(self):
        writer = BitWriter()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits

    def test_write_bits_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0b0010, 4)
        assert writer.getvalue() == bytes([0b10110010])

    def test_bit_length(self):
        writer = BitWriter()
        writer.write_bits(0, 13)
        assert writer.bit_length == 13
        assert len(writer.getvalue()) == 2

    def test_overflow_rejected(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bits(0b100, 2)

    def test_exhaustion_detected(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(BitstreamError):
            reader.read_bit()

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=100))
    def test_bit_roundtrip_property(self, bits):
        writer = BitWriter()
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits


class TestExpGolomb:
    @given(st.integers(0, 1 << 40))
    def test_ue_roundtrip(self, value):
        writer = BitWriter()
        writer.write_ue(value)
        assert BitReader(writer.getvalue()).read_ue() == value

    @given(st.integers(-(1 << 39), 1 << 39))
    def test_se_roundtrip(self, value):
        writer = BitWriter()
        writer.write_se(value)
        assert BitReader(writer.getvalue()).read_se() == value

    def test_canonical_ue_codes(self):
        # ue(0)=1, ue(1)=010, ue(2)=011 — the H.264 table.
        for value, expected_bits in [(0, "1"), (1, "010"), (2, "011"),
                                     (3, "00100"), (4, "00101")]:
            writer = BitWriter()
            writer.write_ue(value)
            produced = "".join(
                str((writer.getvalue()[0] >> (7 - i)) & 1)
                for i in range(len(expected_bits))
            )
            assert produced == expected_bits, value

    def test_small_values_cheap(self):
        writer = BitWriter()
        for _ in range(100):
            writer.write_ue(0)
        assert len(writer.getvalue()) == 13  # 100 bits

    def test_ue_rejects_negative(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_ue(-1)


class TestBlockScanCoding:
    @given(
        st.lists(st.integers(-200, 200), min_size=1, max_size=64)
    )
    def test_scan_roundtrip(self, values):
        scan = np.asarray(values, dtype=np.int64)
        writer = BitWriter()
        encode_block_scan(writer, scan)
        decoded = decode_block_scan(BitReader(writer.getvalue()), len(scan))
        assert np.array_equal(decoded, scan)

    def test_skip_keeps_dc_and_position(self):
        scans = [
            np.array([7, 0, 0, -3, 0, 5, 0, 0], dtype=np.int64),
            np.array([-2, 1, 0, 0, 0, 0, 0, 0], dtype=np.int64),
        ]
        writer = BitWriter()
        for scan in scans:
            encode_block_scan(writer, scan)
        reader = BitReader(writer.getvalue())
        assert skip_block_scan_keep_dc(reader) == 7
        # The cursor must now sit exactly at the second block.
        assert np.array_equal(decode_block_scan(reader, 8), scans[1])

    def test_sparse_scan_is_tiny(self):
        scan = np.zeros(64, dtype=np.int64)
        scan[0] = 12
        writer = BitWriter()
        encode_block_scan(writer, scan)
        assert len(writer.getvalue()) <= 2


class TestEntropyCodedBitstream:
    def _frames(self, num_frames=6, seed=0):
        rng = np.random.default_rng(seed)
        coarse = rng.uniform(30, 220, size=(6, 8))
        base = np.kron(coarse, np.ones((4, 4)))
        drift = rng.normal(0, 2, size=(num_frames, 1, 1)).cumsum(axis=0)
        return np.clip(base[np.newaxis] + drift, 0, 255)

    @pytest.mark.parametrize("use_motion", [False, True])
    def test_decode_identical_to_varint_mode(self, use_motion):
        """Entropy coding is lossless re-packaging: the decoded frames
        are bit-identical to the varint-mode decode."""
        frames = self._frames()
        plain = encode_video(
            frames, fps=25.0, quality=80, gop_size=3, use_motion=use_motion
        )
        packed = encode_video(
            frames, fps=25.0, quality=80, gop_size=3, use_motion=use_motion,
            entropy_coding=True,
        )
        assert np.array_equal(decode_video(plain), decode_video(packed))

    def test_entropy_stream_is_smaller(self):
        frames = self._frames(num_frames=8)
        plain = encode_video(frames, fps=25.0, quality=70, gop_size=4)
        packed = encode_video(
            frames, fps=25.0, quality=70, gop_size=4, entropy_coding=True
        )
        assert packed.size_bytes < plain.size_bytes

    def test_partial_decoder_agrees(self):
        frames = self._frames(num_frames=7)
        plain = encode_video(frames, fps=25.0, quality=80, gop_size=3)
        packed = encode_video(
            frames, fps=25.0, quality=80, gop_size=3, entropy_coding=True
        )
        plain_dc = list(decode_dc_coefficients(plain))
        packed_dc = list(decode_dc_coefficients(packed))
        assert [i for i, _ in plain_dc] == [i for i, _ in packed_dc]
        for (_, grid_a), (_, grid_b) in zip(plain_dc, packed_dc):
            assert np.array_equal(grid_a, grid_b)

    def test_header_carries_flag(self):
        frames = self._frames(num_frames=2)
        packed = encode_video(frames, fps=25.0, entropy_coding=True)
        assert packed.entropy_coding is True
        plain = encode_video(frames, fps=25.0)
        assert plain.entropy_coding is False

    def test_fingerprints_identical_across_packing(self):
        from repro.features.pipeline import FingerprintExtractor

        frames = self._frames(num_frames=6)
        extractor = FingerprintExtractor()
        plain = encode_video(frames, fps=25.0, quality=85, gop_size=2)
        packed = encode_video(
            frames, fps=25.0, quality=85, gop_size=2, entropy_coding=True
        )
        assert np.array_equal(
            extractor.cell_ids_from_encoded(plain),
            extractor.cell_ids_from_encoded(packed),
        )
