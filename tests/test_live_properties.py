"""Hypothesis property test: LiveMonitor is chunking-invariant.

However a stream is cut into pushes, the matches (and engine statistics)
must equal the one-shot run — the property that makes live ingestion
trustworthy.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import QuerySet
from repro.features.pipeline import FingerprintExtractor
from repro.minhash.family import MinHashFamily


def _detector():
    family = MinHashFamily(num_hashes=96, seed=5)
    queries = QuerySet.from_cell_ids(
        {0: np.arange(1000, 1060)}, {0: 60}, family
    )
    config = DetectorConfig(num_hashes=96, threshold=0.6, window_seconds=10.0)
    return StreamingDetector(config, queries, 1.0)


@settings(max_examples=20, deadline=None)
@given(
    chunk_sizes=st.lists(st.integers(1, 47), min_size=1, max_size=40),
    copy_offset=st.integers(0, 60),
    seed=st.integers(0, 1000),
)
def test_chunking_invariance(chunk_sizes, copy_offset, seed):
    rng = np.random.default_rng(seed)
    copy = np.arange(1000, 1060)
    stream = np.concatenate(
        [
            rng.integers(100_000, 900_000, size=copy_offset),
            copy,
            rng.integers(100_000, 900_000, size=40),
        ]
    )

    reference = _detector()
    expected_matches = {
        (m.qid, m.start_frame, m.end_frame, round(m.similarity, 9))
        for m in reference.process_cell_ids(stream)
    }

    monitor = LiveMonitor(_detector(), FingerprintExtractor())
    got = []
    cursor = 0
    index = 0
    while cursor < len(stream):
        size = chunk_sizes[index % len(chunk_sizes)]
        got.extend(monitor.push_cell_ids(stream[cursor : cursor + size]))
        cursor += size
        index += 1
    got.extend(monitor.flush())

    assert {
        (m.qid, m.start_frame, m.end_frame, round(m.similarity, 9))
        for m in got
    } == expected_matches
    assert expected_matches, "sanity: the exact copy must always be found"
    assert (
        monitor.detector.stats.windows_processed
        == reference.stats.windows_processed
    )
