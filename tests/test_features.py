"""Tests for fingerprint extraction: block means, Eq. (1), selection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.gop import encode_video
from repro.config import FingerprintConfig
from repro.errors import FeatureError
from repro.features.dc_extract import (
    block_means_from_encoded,
    block_means_from_frames,
    region_mean_grid,
)
from repro.features.normalize import normalize_features
from repro.features.pipeline import FingerprintExtractor
from repro.features.select import CoefficientSelector
from repro.video.synth import ClipSynthesizer


class TestBlockMeansFromFrames:
    def test_shape(self):
        frames = np.zeros((5, 12, 18))
        assert block_means_from_frames(frames, 3, 3).shape == (5, 9)

    def test_constant_frame(self):
        frames = np.full((2, 12, 12), 7.0)
        assert np.allclose(block_means_from_frames(frames), 7.0)

    def test_quadrant_values(self):
        frame = np.zeros((8, 8))
        frame[:4, :4] = 100.0
        frame[:4, 4:] = 20.0
        frame[4:, :4] = 60.0
        frame[4:, 4:] = 40.0
        means = block_means_from_frames(frame[np.newaxis], 2, 2)[0]
        assert np.allclose(means, [100.0, 20.0, 60.0, 40.0])

    def test_fractional_regions_unaligned(self):
        # 5 rows split in 3: regions of 5/3 rows each; the overall mean of
        # the region means must equal the frame mean for any frame.
        rng = np.random.default_rng(0)
        frame = rng.uniform(0, 255, size=(5, 7))
        means = block_means_from_frames(frame[np.newaxis], 3, 3)[0]
        assert means.mean() == pytest.approx(frame.mean())

    def test_global_mean_preserved(self):
        rng = np.random.default_rng(1)
        frames = rng.uniform(0, 255, size=(4, 30, 44))
        means = block_means_from_frames(frames, 3, 3)
        assert np.allclose(means.mean(axis=1), frames.mean(axis=(1, 2)))

    def test_resolution_invariance(self):
        # A frame and its nearest 2x upsampling share block means.
        rng = np.random.default_rng(2)
        small = rng.uniform(0, 255, size=(6, 9))
        big = np.kron(small, np.ones((2, 2)))
        a = block_means_from_frames(small[np.newaxis], 3, 3)
        b = block_means_from_frames(big[np.newaxis], 3, 3)
        assert np.allclose(a, b)

    def test_rejects_bad_ndim(self):
        with pytest.raises(FeatureError):
            block_means_from_frames(np.zeros((4, 4)))

    def test_rejects_too_many_blocks(self):
        with pytest.raises(FeatureError):
            block_means_from_frames(np.zeros((1, 2, 9)), 3, 3)

    def test_region_mean_grid_matches(self):
        rng = np.random.default_rng(3)
        frame = rng.uniform(0, 255, size=(12, 18))
        grid = region_mean_grid(frame, 3, 3)
        flat = block_means_from_frames(frame[np.newaxis], 3, 3)[0]
        assert np.allclose(grid.reshape(-1), flat)


class TestBlockMeansFromEncoded:
    def test_compressed_matches_pixel_path(self):
        clip = ClipSynthesizer(seed=4).generate_clip(4.0, label="c", fps=2.0)
        encoded = encode_video(clip.frames, fps=clip.fps, quality=95, gop_size=1)
        compressed = block_means_from_encoded(encoded)
        pixel = block_means_from_frames(clip.frames)
        # The compressed path treats each 8x8 block as uniform, so region
        # boundaries that cut through a block differ by up to the
        # intra-block gradient.
        errors = np.abs(compressed - pixel)
        assert errors.mean() < 1.5
        assert errors.max() < 5.0

    def test_keyframes_only(self):
        clip = ClipSynthesizer(seed=4).generate_clip(4.0, label="c", fps=2.0)
        encoded = encode_video(clip.frames, fps=clip.fps, quality=90, gop_size=3)
        means = block_means_from_encoded(encoded)
        assert means.shape[0] == encoded.num_keyframes


class TestNormalize:
    def test_unit_range(self):
        rng = np.random.default_rng(5)
        means = rng.uniform(0, 255, size=(10, 9))
        normalized = normalize_features(means)
        assert np.allclose(normalized.min(axis=1), 0.0)
        assert np.allclose(normalized.max(axis=1), 1.0)

    def test_gain_invariance(self):
        rng = np.random.default_rng(6)
        means = rng.uniform(10, 200, size=(5, 9))
        assert np.allclose(
            normalize_features(means), normalize_features(means * 1.7)
        )

    def test_offset_invariance(self):
        rng = np.random.default_rng(7)
        means = rng.uniform(10, 200, size=(5, 9))
        assert np.allclose(
            normalize_features(means), normalize_features(means + 30.0)
        )

    def test_flat_frame_maps_to_half(self):
        means = np.full((2, 9), 42.0)
        assert np.allclose(normalize_features(means), 0.5)

    def test_mixed_flat_and_normal(self):
        means = np.vstack([np.full(9, 1.0), np.arange(9.0)])
        normalized = normalize_features(means)
        assert np.allclose(normalized[0], 0.5)
        assert normalized[1, 0] == 0.0 and normalized[1, -1] == 1.0

    def test_rejects_bad_ndim(self):
        with pytest.raises(FeatureError):
            normalize_features(np.zeros(9))

    @settings(max_examples=30)
    @given(
        arrays(
            np.float64,
            (3, 9),
            elements=st.floats(0, 255, allow_nan=False),
        )
    )
    def test_output_always_in_unit_interval(self, means):
        normalized = normalize_features(means)
        assert (normalized >= 0.0).all() and (normalized <= 1.0).all()


class TestSelector:
    def test_spread_default_indices(self):
        selector = CoefficientSelector(d=5, num_blocks=9)
        assert list(selector.indices) == [0, 2, 4, 6, 8]

    def test_spread_all(self):
        selector = CoefficientSelector(d=9, num_blocks=9)
        assert list(selector.indices) == list(range(9))

    def test_first(self):
        selector = CoefficientSelector(d=3, num_blocks=9, strategy="first")
        assert list(selector.indices) == [0, 1, 2]

    def test_center_out(self):
        selector = CoefficientSelector(d=1, num_blocks=9, strategy="center_out")
        assert list(selector.indices) == [4]  # centre of a 3x3 grid

    def test_center_out_five(self):
        selector = CoefficientSelector(d=5, num_blocks=9, strategy="center_out")
        picked = set(selector.indices.tolist())
        assert 4 in picked  # centre always included
        assert len(picked) == 5

    def test_indices_always_distinct(self):
        for d in range(1, 10):
            selector = CoefficientSelector(d=d, num_blocks=9)
            assert len(set(selector.indices.tolist())) == d

    def test_apply(self):
        features = np.arange(18.0).reshape(2, 9)
        selector = CoefficientSelector(d=3, num_blocks=9, strategy="first")
        assert np.array_equal(selector.apply(features), features[:, :3])

    def test_apply_rejects_wrong_width(self):
        selector = CoefficientSelector(d=3, num_blocks=9)
        with pytest.raises(FeatureError):
            selector.apply(np.zeros((2, 8)))

    def test_rejects_bad_d(self):
        with pytest.raises(FeatureError):
            CoefficientSelector(d=0, num_blocks=9)
        with pytest.raises(FeatureError):
            CoefficientSelector(d=10, num_blocks=9)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(FeatureError):
            CoefficientSelector(d=3, num_blocks=9, strategy="magic")


class TestFingerprintExtractor:
    def test_feature_shape(self, extractor):
        clip = ClipSynthesizer(seed=8).generate_clip(5.0, label="c", fps=2.0)
        features = extractor.features_from_clip(clip)
        assert features.shape == (clip.num_frames, extractor.config.d)

    def test_cell_ids_in_range(self, extractor):
        clip = ClipSynthesizer(seed=8).generate_clip(5.0, label="c", fps=2.0)
        ids = extractor.cell_ids_from_clip(clip)
        assert ids.shape == (clip.num_frames,)
        assert (ids >= 0).all()
        assert (ids < extractor.config.num_cells).all()

    def test_compressed_and_pixel_paths_agree(self, extractor):
        clip = ClipSynthesizer(seed=8).generate_clip(4.0, label="c", fps=2.0)
        encoded = encode_video(clip.frames, fps=clip.fps, quality=95, gop_size=1)
        pixel_ids = extractor.cell_ids_from_clip(clip)
        compressed_ids = extractor.cell_ids_from_encoded(encoded)
        agreement = (pixel_ids == compressed_ids).mean()
        assert agreement > 0.85

    def test_brightness_invariance_of_cells(self, extractor):
        clip = ClipSynthesizer(seed=8).generate_clip(10.0, label="c", fps=2.0)
        dimmed = clip.with_frames(clip.frames * 0.8)
        a = extractor.cell_ids_from_clip(clip)
        b = extractor.cell_ids_from_clip(dimmed)
        assert np.array_equal(a, b)

    def test_custom_config(self):
        extractor = FingerprintExtractor(config=FingerprintConfig(d=3, u=2))
        clip = ClipSynthesizer(seed=8).generate_clip(5.0, label="c", fps=2.0)
        ids = extractor.cell_ids_from_clip(clip)
        assert (ids < 2 * 3 * 2**3).all()
