"""Hypothesis property tests over the end-to-end detection engine.

These run the full detector on randomly generated cell-id streams and
assert the invariants the design guarantees:

* an exact copy of a query, inserted anywhere, is always detected at the
  paper's rule-compliant position (no false negatives for verbatim
  copies);
* match records are structurally sane (spans inside the stream,
  similarities in [0, 1], positions monotone per candidate length cap);
* the exact Jaccard similarity and the bit-signature estimate agree for
  the same hash family (Lemma 1 end-to-end).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.membership import jaccard_similarity
from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.core.detector import StreamingDetector
from repro.core.query import QuerySet
from repro.core.results import merge_matches
from repro.minhash.family import MinHashFamily
from repro.signature.bitsig import BitSignature


def _detector(query_ids, num_frames, threshold=0.7, **config_overrides):
    family = MinHashFamily(num_hashes=128, seed=5)
    queries = QuerySet.from_cell_ids(
        {0: np.asarray(query_ids)}, {0: num_frames}, family
    )
    defaults = dict(
        num_hashes=128,
        threshold=threshold,
        window_seconds=10.0,
        order=CombinationOrder.SEQUENTIAL,
        representation=Representation.BIT,
        use_index=True,
    )
    defaults.update(config_overrides)
    return StreamingDetector(DetectorConfig(**defaults), queries, 1.0)


@settings(max_examples=20, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=120),
    copy_frames=st.integers(min_value=30, max_value=80),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_exact_copy_always_detected(offset, copy_frames, seed):
    """A verbatim copy at any alignment is found (rule-compliant position)."""
    rng = np.random.default_rng(seed)
    copy_ids = np.arange(1000, 1000 + copy_frames)
    head = rng.integers(100_000, 900_000, size=offset)
    tail = rng.integers(100_000, 900_000, size=60)
    stream = np.concatenate([head, copy_ids, tail])

    detector = _detector(copy_ids, copy_frames)
    matches = detector.process_cell_ids(stream)
    assert matches, "exact copy must be detected"
    w = detector.window_frames
    begin, end = offset, offset + copy_frames
    assert any(
        begin + w <= m.position_frame <= end + w for m in matches
    ), "at least one match must satisfy the paper's position rule"


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    order=st.sampled_from(list(CombinationOrder)),
    representation=st.sampled_from(list(Representation)),
)
def test_match_records_are_sane(seed, order, representation):
    rng = np.random.default_rng(seed)
    copy_ids = np.arange(1000, 1060)
    stream = np.concatenate(
        [
            rng.integers(100_000, 900_000, size=50),
            copy_ids,
            rng.integers(100_000, 900_000, size=50),
        ]
    )
    detector = _detector(
        copy_ids, 60, threshold=0.5, order=order, representation=representation
    )
    matches = detector.process_cell_ids(stream)
    cap_frames = detector.context.global_max_windows * detector.window_frames
    for match in matches:
        assert 0.0 <= match.similarity <= 1.0
        assert 0 <= match.start_frame < match.end_frame <= len(stream)
        assert match.end_frame - match.start_frame <= cap_frames
        assert match.qid == 0


@settings(max_examples=15, deadline=None)
@given(
    left=st.sets(st.integers(0, 2000), min_size=5, max_size=80),
    right=st.sets(st.integers(0, 2000), min_size=5, max_size=80),
)
def test_lemma1_estimates_jaccard_end_to_end(left, right):
    """BitSignature similarity == sketch estimate ≈ exact Jaccard."""
    family = MinHashFamily(num_hashes=1024, seed=9)
    sketch_left = family.sketch(sorted(left))
    sketch_right = family.sketch(sorted(right))
    signature = BitSignature.encode(sketch_left, sketch_right)
    assert signature.similarity == pytest.approx(
        sketch_left.similarity(sketch_right)
    )
    exact = jaccard_similarity(sorted(left), sorted(right))
    assert abs(signature.similarity - exact) < 0.1  # 1024 hashes, 5+ sigma


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_detections_cover_matches(seed):
    rng = np.random.default_rng(seed)
    copy_ids = np.arange(1000, 1060)
    stream = np.concatenate(
        [
            rng.integers(100_000, 900_000, size=40),
            copy_ids,
            rng.integers(100_000, 900_000, size=40),
        ]
    )
    detector = _detector(copy_ids, 60, threshold=0.5)
    matches = detector.process_cell_ids(stream)
    detections = merge_matches(matches, gap_frames=detector.window_frames)
    for match in matches:
        assert any(
            d.qid == match.qid
            and d.start_frame <= match.start_frame
            and d.end_frame >= match.end_frame
            for d in detections
        ), "every match must be covered by a detection"
    assert sum(d.num_matches for d in detections) == len(matches)
