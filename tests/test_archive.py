"""Unit coverage for the sketch archive: atomic writes, the segment
store (CRC, torn-tail recovery, quarantine, compaction), the spillable
ring (dedupe, gaps, retention, pins, checkpoint reconcile) and the
gap-aware ingest tap. Backfill equivalence lives in test_backfill.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.archive import (
    ARCHIVE_FORMAT,
    ArchiveTap,
    SegmentStore,
    SketchArchive,
)
from repro.errors import ArchiveError
from repro.minhash.family import MinHashFamily
from repro.obs.registry import MetricsRegistry
from repro.serve import CheckpointManager
from repro.serve.checkpoint import ServiceCheckpoint
from repro.utils.atomic import TMP_SUFFIX, atomic_savez, atomic_write_bytes

K = 8
FAMILY = MinHashFamily(num_hashes=K, seed=3)
FP = FAMILY.fingerprint


def _rows(first, num, seed=0):
    """(indices, starts, frames, values) for windows [first, first+num)."""
    rng = np.random.default_rng(seed + first)
    indices = np.arange(first, first + num, dtype=np.int64)
    starts = indices * 5
    frames = np.full(num, 5, dtype=np.int64)
    values = rng.integers(0, 2**31, size=(num, K), dtype=np.int64)
    return indices, starts, frames, values


# ----------------------------------------------------------------------
# atomic write helpers
# ----------------------------------------------------------------------


def test_atomic_write_bytes_round_trip(tmp_path):
    path = tmp_path / "blob.bin"
    atomic_write_bytes(path, b"payload")
    assert path.read_bytes() == b"payload"
    atomic_write_bytes(path, b"replaced")
    assert path.read_bytes() == b"replaced"
    assert not list(tmp_path.glob(f"*{TMP_SUFFIX}"))


def test_atomic_savez_round_trip(tmp_path):
    path = tmp_path / "arrays.npz"
    payload = {"a": np.arange(4), "b": np.eye(2)}
    atomic_savez(path, payload)
    with np.load(path) as archive:
        np.testing.assert_array_equal(archive["a"], payload["a"])
        np.testing.assert_array_equal(archive["b"], payload["b"])
    assert not list(tmp_path.glob(f"*{TMP_SUFFIX}"))


# ----------------------------------------------------------------------
# SegmentStore
# ----------------------------------------------------------------------


def test_store_seal_load_round_trip(tmp_path):
    store = SegmentStore(tmp_path)
    _, starts, frames, values = _rows(0, 6)
    info = store.seal(0, starts, frames, values, FP)
    assert info.first_index == 0 and info.num_windows == 6
    assert info.end_index == 6
    got_starts, got_frames, got_values = store.load(info)
    np.testing.assert_array_equal(got_starts, starts)
    np.testing.assert_array_equal(got_frames, frames)
    np.testing.assert_array_equal(got_values, values)
    assert store.family_fingerprint(info) == FP
    assert store.windows_on_disk() == 6
    assert store.bytes_on_disk() == info.nbytes > 0


def test_store_rejects_overlapping_seal(tmp_path):
    store = SegmentStore(tmp_path)
    _, starts, frames, values = _rows(0, 6)
    store.seal(0, starts, frames, values, FP)
    with pytest.raises(ArchiveError, match="overlap"):
        store.seal(4, starts, frames, values, FP)
    # Non-overlapping (even out of order) is fine.
    store.seal(10, starts, frames, values, FP)
    assert [seg.first_index for seg in store.segments] == [0, 10]


def test_store_recover_sweeps_tmp_and_quarantines_torn_tail(tmp_path):
    store = SegmentStore(tmp_path)
    for first in (0, 6):
        _, starts, frames, values = _rows(first, 6)
        store.seal(first, starts, frames, values, FP)
    tail = store.segments[-1].path
    tail.write_bytes(tail.read_bytes()[:100])  # torn by a crash
    (tmp_path / ("junk.npz" + TMP_SUFFIX)).write_bytes(b"half")

    recovered = SegmentStore(tmp_path).recover()
    assert [seg.first_index for seg in recovered] == [0]
    assert not list(tmp_path.glob(f"*{TMP_SUFFIX}"))
    quarantined = list(tmp_path.glob("*.corrupt"))
    assert len(quarantined) == 1 and tail.name in quarantined[0].name


def test_store_recover_refuses_corrupt_before_valid(tmp_path):
    store = SegmentStore(tmp_path)
    for first in (0, 6):
        _, starts, frames, values = _rows(first, 6)
        store.seal(first, starts, frames, values, FP)
    head = store.segments[0].path
    head.write_bytes(b"not an npz")
    with pytest.raises(ArchiveError, match="not a torn tail"):
        SegmentStore(tmp_path).recover()


def test_store_load_detects_payload_corruption(tmp_path):
    store = SegmentStore(tmp_path)
    _, starts, frames, values = _rows(0, 4)
    info = store.seal(0, starts, frames, values, FP)
    # Rewrite the payload without refreshing the stored CRC.
    with np.load(info.path, allow_pickle=True) as archive:
        members = {name: archive[name] for name in archive.files}
    members["starts"] = members["starts"] + 1
    np.savez(info.path, **members)
    with pytest.raises(ArchiveError, match="CRC"):
        store.load(info)
    # recover() treats the same damage as a torn tail.
    assert SegmentStore(tmp_path).recover() == []


def test_store_compact_merges_contiguous_runts(tmp_path):
    store = SegmentStore(tmp_path)
    for first, num in ((0, 3), (3, 3), (6, 2), (10, 2)):
        _, starts, frames, values = _rows(first, num)
        store.seal(first, starts, frames, values, FP)
    merged = store.compact(8, FP)
    assert merged >= 1
    spans = [(seg.first_index, seg.end_index) for seg in store.segments]
    assert spans == [(0, 8), (10, 12)]  # gap at [8, 10) never bridged
    assert store.windows_on_disk() == 10
    # The merged file round-trips with a fresh CRC.
    starts, frames, values = store.load(store.segments[0])
    np.testing.assert_array_equal(starts, np.arange(8) * 5)


# ----------------------------------------------------------------------
# SketchArchive (ring + spill)
# ----------------------------------------------------------------------


def test_ring_memory_only_retention():
    archive = SketchArchive(FP, K, retain_windows=4)
    archive.append(*_rows(0, 10))
    assert archive.windows_retained() == 4
    assert archive.available() == (6, 10)
    assert archive.registry.counter("archive.windows_dropped") == 6


def test_ring_seals_full_segments_and_dedupes(tmp_path):
    registry = MetricsRegistry(timing_enabled=False)
    archive = SketchArchive(
        FP, K, directory=tmp_path, segment_windows=4, registry=registry
    )
    rows = _rows(0, 10)
    archive.append(*rows)
    assert archive.next_index == 10
    # 2 full segments sealed, 2 windows still in the ring.
    assert [seg.end_index for seg in archive.store.segments] == [4, 8]
    assert archive.ring_windows == 2
    # A checkpoint-resume replay of the same rows is fully deduplicated.
    assert archive.append(*rows) == 0
    assert registry.counter("archive.windows_deduped") == 10
    assert archive.windows_retained() == 10


def test_ring_gap_seals_open_run(tmp_path):
    archive = SketchArchive(FP, K, directory=tmp_path, segment_windows=64)
    archive.append(*_rows(0, 3))
    archive.note_gap(2)
    assert archive.next_index == 5
    # The pre-gap run sealed even though it is under segment_windows.
    assert [
        (seg.first_index, seg.end_index) for seg in archive.store.segments
    ] == [(0, 3)]
    archive.append(*_rows(5, 2))
    blocks = archive.iter_blocks(0, 10)
    seen = np.concatenate([block[0] for block in blocks])
    np.testing.assert_array_equal(seen, [0, 1, 2, 5, 6])


def test_ring_append_rejects_non_ascending():
    archive = SketchArchive(FP, K)
    archive.append(*_rows(0, 3))
    indices = np.asarray([5, 4], dtype=np.int64)
    starts = indices * 5
    frames = np.full(2, 5, dtype=np.int64)
    values = np.zeros((2, K), dtype=np.int64)
    with pytest.raises(ArchiveError, match="ascending"):
        archive.append(indices, starts, frames, values)


def test_ring_iter_blocks_clips_to_range(tmp_path):
    archive = SketchArchive(FP, K, directory=tmp_path, segment_windows=4)
    reference = _rows(0, 10)
    archive.append(*reference)
    blocks = archive.iter_blocks(2, 9)
    indices = np.concatenate([block[0] for block in blocks])
    values = np.concatenate([block[3] for block in blocks])
    np.testing.assert_array_equal(indices, np.arange(2, 9))
    np.testing.assert_array_equal(values, reference[3][2:9])


def test_ring_pin_blocks_retention(tmp_path):
    archive = SketchArchive(
        FP, K, directory=tmp_path, segment_windows=2, retain_windows=4
    )
    token = archive.pin(0, 6)
    archive.append(*_rows(0, 10))
    # The pinned prefix survived even though the bound is exceeded.
    assert archive.available()[0] == 0
    archive.unpin(token)
    assert archive.windows_retained() <= 4
    assert archive.available()[0] >= 6


def test_ring_retain_bytes(tmp_path):
    archive = SketchArchive(
        FP, K, directory=tmp_path, segment_windows=2, retain_bytes=1
    )
    archive.append(*_rows(0, 8))
    # Every sealed segment except the ring remainder was dropped.
    assert archive.store.windows_on_disk() <= 2
    assert archive.next_index == 8  # the watermark never rewinds


def test_ring_state_restore_reconciles_with_disk(tmp_path):
    archive = SketchArchive(FP, K, directory=tmp_path, segment_windows=4)
    archive.append(*_rows(0, 6))
    state = archive.state()  # ring holds [4, 6)
    # After the snapshot, more progress seals [4, 8) to disk.
    archive.append(*_rows(6, 2))
    archive.seal_open_run()

    revived = SketchArchive(FP, K, directory=tmp_path, segment_windows=4)
    revived.restore(*state)
    # Disk won: the ring copies of [4, 6) were reconciled away and the
    # watermark kept the later disk progress.
    assert revived.ring_windows == 0
    assert revived.next_index == 8
    assert revived.windows_retained() == 8
    assert (
        revived.registry.counter("archive.windows_reconciled") == 2
    )


def test_ring_restore_keeps_ring_rows_past_disk(tmp_path):
    archive = SketchArchive(FP, K, directory=tmp_path, segment_windows=4)
    archive.append(*_rows(0, 6))
    state = archive.state()
    revived = SketchArchive(FP, K, directory=tmp_path, segment_windows=4)
    revived.restore(*state)
    assert revived.ring_windows == 2  # [4, 6) survive in the ring
    assert revived.next_index == 6
    blocks = revived.iter_blocks(0, 6)
    np.testing.assert_array_equal(
        np.concatenate([block[0] for block in blocks]), np.arange(6)
    )


def test_ring_fast_forward_never_rewinds():
    archive = SketchArchive(FP, K)
    archive.append(*_rows(0, 4))
    archive.fast_forward(9)
    assert archive.next_index == 9
    archive.fast_forward(2)
    assert archive.next_index == 9


def test_archive_rejects_bad_bounds():
    with pytest.raises(ArchiveError):
        SketchArchive(FP, K, segment_windows=0)
    with pytest.raises(ArchiveError):
        SketchArchive(FP, K, retain_windows=0)


def test_archive_recovers_catalogue_on_construction(tmp_path):
    first = SketchArchive(FP, K, directory=tmp_path, segment_windows=4)
    first.append(*_rows(0, 8))
    second = SketchArchive(FP, K, directory=tmp_path, segment_windows=4)
    assert second.next_index == 8  # resumes past the sealed segments
    assert second.windows_retained() == 8


# ----------------------------------------------------------------------
# ArchiveTap (lossy ingest accounting)
# ----------------------------------------------------------------------


def test_tap_mirrors_monitor_clock_under_gaps():
    archive = SketchArchive(FP, K)
    tap = ArchiveTap(archive, FAMILY, window_frames=5)
    rng = np.random.default_rng(11)
    assert tap.push_cell_ids(rng.integers(0, 100, size=12)) == 2
    # Lose 6 frames mid-window: the partial window dies, and the gap
    # runs to the next boundary (frames 10..20 → windows 2 and 3).
    tap.skip_frames(6)
    assert tap.skip_remaining == 2  # swallow the gap-ending window tail
    assert archive.next_index == 4
    assert tap.push_cell_ids(rng.integers(0, 100, size=7)) == 1
    assert tap.flush() == 0  # nothing pending
    lo, hi = archive.available()
    assert (lo, hi) == (0, 5)
    seen = np.concatenate(
        [block[0] for block in archive.iter_blocks(lo, hi)]
    )
    np.testing.assert_array_equal(seen, [0, 1, 4])


def test_tap_flush_archives_partial_tail():
    archive = SketchArchive(FP, K)
    tap = ArchiveTap(archive, FAMILY, window_frames=5)
    ids = np.arange(8)
    tap.push_cell_ids(ids)
    assert tap.flush() == 1
    blocks = archive.iter_blocks(0, 2)
    indices, starts, frames, values = blocks[0]
    np.testing.assert_array_equal(frames, [5, 3])
    # The tail sketch matches sketching its distinct cells directly.
    expected = FAMILY.sketch(np.unique(ids[5:])).values
    np.testing.assert_array_equal(values[1], expected)
    with pytest.raises(ArchiveError):
        tap.push_cell_ids(ids)


def test_tap_rejects_foreign_family():
    archive = SketchArchive(FP, K)
    other = MinHashFamily(num_hashes=K, seed=99)
    with pytest.raises(ArchiveError, match="family"):
        ArchiveTap(archive, other, window_frames=5)


# ----------------------------------------------------------------------
# CheckpointManager keep_last retention
# ----------------------------------------------------------------------


def _snapshot(chunks):
    from repro.config import DetectorConfig
    from repro.core.query import Query, QuerySet

    cells = np.arange(4, dtype=np.int64)
    query = Query(
        qid=1, cell_ids=cells, num_frames=4, sketch=FAMILY.sketch(cells)
    )
    return ServiceCheckpoint(
        config=DetectorConfig(num_hashes=K),
        keyframes_per_second=2.0,
        chunks_ingested=chunks,
        cap_hint=1,
        strategy="load",
        worker_queries=[QuerySet([query], FAMILY)],
        worker_states=[{"pending": np.empty(0, dtype=np.int64)}],
        matches=[],
    )


def test_manager_keep_last_prunes_oldest(tmp_path):
    manager = CheckpointManager(tmp_path, keep_last=2)
    for chunks in (1, 2, 3, 4):
        manager.save(_snapshot(chunks))
    kept = [path.name for path in manager.snapshots()]
    assert kept == ["ckpt-0000000003.npz", "ckpt-0000000004.npz"]


def test_manager_never_orphans_corrupt_newest(tmp_path):
    manager = CheckpointManager(tmp_path, keep_last=1)
    manager.save(_snapshot(1))
    # A corrupt file lands at the newest position, bypassing save().
    bad = manager.path_for(2)
    bad.write_bytes(b"torn")
    assert manager.prune() == []  # the only loadable snapshot survives
    assert manager.path_for(1).exists()
    # Once a loadable newer snapshot exists, pruning proceeds.
    manager.save(_snapshot(3))
    names = {path.name for path in manager.snapshots()}
    assert names == {"ckpt-0000000003.npz"}


def test_manager_rejects_bad_keep_last(tmp_path):
    from repro.errors import ServeError

    with pytest.raises(ServeError):
        CheckpointManager(tmp_path, keep_last=0)


def test_segment_format_tag_is_checked(tmp_path):
    store = SegmentStore(tmp_path)
    _, starts, frames, values = _rows(0, 2)
    info = store.seal(0, starts, frames, values, FP)
    with np.load(info.path, allow_pickle=True) as archive:
        members = {name: archive[name] for name in archive.files}
    fmt = np.empty(1, dtype=object)
    fmt[0] = "alien/9"
    members["format"] = fmt
    np.savez(info.path, **members)
    with pytest.raises(ArchiveError, match="format"):
        store.load(info)
    assert SegmentStore(tmp_path).recover() == []
    assert ARCHIVE_FORMAT == "repro.arch/1"
