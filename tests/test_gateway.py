"""End-to-end gateway tests: parity, resume, flow control, hygiene.

The workload here is the repo's canonical match-producing stream: two
sketched queries planted verbatim inside a 120-frame stream, detected
by a 32-hash family at threshold 0.3. Every parity assertion compares
the gateway's pushed match stream bit-for-bit (similarity included)
against a fresh in-process run over the same chunks.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.config import DetectorConfig
from repro.core.query import QuerySet
from repro.gateway import (
    AdminClient,
    GatewayServer,
    IngestClient,
    WatchClient,
)
from repro.minhash.family import MinHashFamily
from repro.serve import ChaosPlan, DetectionService, SupervisorConfig
from repro.serve.queues import BackpressurePolicy, BoundedChannel

CELL_SPACE = 500
NUM_HASHES = 32
KPS = 2.0
STREAM_FRAMES = 120
CHUNK_FRAMES = 10


def _config() -> DetectorConfig:
    return DetectorConfig(
        num_hashes=NUM_HASHES, threshold=0.3, window_seconds=2.5
    )


def _workload():
    """Queries + chunked stream with both queries planted verbatim."""
    rng = np.random.default_rng(42)
    qcells = {
        0: rng.integers(0, CELL_SPACE, size=20),
        1: rng.integers(0, CELL_SPACE, size=30),
    }
    frames = {0: 20, 1: 30}
    stream = rng.integers(0, CELL_SPACE, size=STREAM_FRAMES)
    stream[30:50] = qcells[0]
    stream[70:100] = qcells[1]
    chunks = [
        stream[start : start + CHUNK_FRAMES].astype(np.int64)
        for start in range(0, STREAM_FRAMES, CHUNK_FRAMES)
    ]
    return qcells, frames, chunks


def make_service(backend: str = "thread", **extra) -> DetectionService:
    qcells, frames, _ = _workload()
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=5)
    queries = QuerySet.from_cell_ids(qcells, frames, family)
    return DetectionService(
        _config(), queries, KPS, num_workers=2, backend=backend, **extra
    )


def _match_tuple(source) -> tuple:
    if isinstance(source, dict):  # a watch event header
        return (source["qid"], source["window_index"],
                source["start_frame"], source["end_frame"],
                source["similarity"])
    return (source.qid, source.window_index, source.start_frame,
            source.end_frame, source.similarity)


def _reference_run(backend: str):
    """The in-process ground truth: same chunks, same service shape."""
    _, _, chunks = _workload()
    service = make_service(backend)
    try:
        for chunk in chunks:
            service.run([chunk], flush=False)
        service.flush()
        matches = [_match_tuple(m) for m in service.collector.matches]
        metrics = service.metrics_snapshot()
    finally:
        service.close()
    return matches, metrics


def _stable_metrics(snapshot: dict) -> dict:
    """The deterministic counters only — timing-dependent backpressure
    and shared-memory-wait counts differ run to run by design."""
    return {
        name: value
        for name, value in snapshot["counters"].items()
        if not any(s in name for s in ("backpressure", "shm", "wait"))
    }


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_kill_resume_parity(backend):
    """A mid-stream client crash + token resume must change nothing:
    the watched match stream is bit-for-bit the in-process stream."""
    reference, ref_metrics = _reference_run(backend)
    assert reference, "workload must produce matches to be a real test"

    _, _, chunks = _workload()
    service = make_service(backend)
    server = GatewayServer(service, credits=4)
    handle = server.run_in_thread()
    try:
        watcher = WatchClient("127.0.0.1", handle.port, credits=1 << 16)

        first = IngestClient("127.0.0.1", handle.port)
        token = first.token
        assert first.last_seq == -1
        for seq in range(6):
            first.push(seq, chunks[seq])
        first.drain()
        first.kill()  # crash: no bye, no end

        second = IngestClient(
            "127.0.0.1", handle.port, resume_token=token
        )
        assert second.token == token
        assert second.last_seq == 5
        # Deliberately replay two already-processed chunks: the
        # session's seq-dedupe must absorb the overlap.
        for seq in range(second.last_seq - 1, len(chunks)):
            second.push(seq, chunks[seq])
        total = second.end()
        second.close()

        watched = [_match_tuple(event) for event in watcher.matches()]
        assert watcher.total == len(reference)
        watcher.close()

        assert total == len(reference)
        assert watched == reference
        assert _stable_metrics(service.metrics_snapshot()) == \
            _stable_metrics(ref_metrics)
        assert server.registry.counter("gateway.resumes") == 1
    finally:
        handle.stop(drain=False, flush=False)
        service.close()


def test_watch_resume_continues_without_replay_or_loss():
    reference, _ = _reference_run("thread")
    _, _, chunks = _workload()
    service = make_service()
    server = GatewayServer(service, credits=4)
    handle = server.run_in_thread()
    try:
        first = WatchClient("127.0.0.1", handle.port, credits=1 << 16)
        token = first.token

        client = IngestClient("127.0.0.1", handle.port)
        for seq, chunk in enumerate(chunks):
            client.push(seq, chunk)
        total = client.end()
        client.close()
        assert total == len(reference)

        seen = []
        for event in first.matches():
            seen.append(_match_tuple(event))
            if len(seen) == len(reference) // 2:
                break
        first.kill()  # crash mid-consumption

        resumed = WatchClient(
            "127.0.0.1", handle.port,
            resume_token=token, last_acked=first.last_acked,
        )
        assert resumed.next_match == first.last_acked + 1
        seen.extend(_match_tuple(event) for event in resumed.matches())
        resumed.close()
        assert seen == reference
    finally:
        handle.stop(drain=False, flush=False)
        service.close()


class _StalledSession:
    """Holds the service thread inside process_chunk until released."""

    def __init__(self, server):
        self.gate = threading.Event()
        self.entered = threading.Event()
        self._server = server

    def install(self):
        session = self._server._session
        original = session.process_chunk

        def stalled(chunk):
            self.entered.set()
            assert self.gate.wait(timeout=30), "test gate never released"
            return original(chunk)

        session.process_chunk = stalled


@pytest.mark.parametrize(
    "policy", [BackpressurePolicy.SHED, BackpressurePolicy.DROP_OLDEST]
)
def test_lossy_policies_surface_counted_drop_notices(policy):
    """With a backed-up channel, lossy policies must refuse chunks,
    refund the credit, notify the client, and count ``gateway.drops``."""
    service = make_service()
    server = GatewayServer(service, credits=4, policy=policy)
    # The credit window normally sizes the channel so a compliant
    # client can never overrun it; shrink the channel to model a
    # gateway whose service is slower than its wire.
    server._pending = BoundedChannel(2)
    handle = server.run_in_thread()
    try:
        _, _, chunks = _workload()
        client = IngestClient("127.0.0.1", handle.port)
        assert client.policy == policy.value

        stall = _StalledSession(server)
        stall.install()

        # seq 0 is taken by the service thread and parked; the channel
        # (capacity 2) then fills with seqs 1-2; seq 3 must overflow.
        client.push(0, chunks[0])
        assert stall.entered.wait(timeout=10)
        for seq in (1, 2, 3):
            client.push(seq, chunks[seq])
        deadline = time.monotonic() + 10
        while not client.dropped and time.monotonic() < deadline:
            client._pump_once()
        assert client.dropped, "no drop notice arrived"
        if policy is BackpressurePolicy.SHED:
            assert client.dropped == [3]  # the refused newcomer
        else:
            assert client.dropped == [1]  # the stolen oldest
        stall.gate.set()
        client.drain()
        # Exactly one loss: the other three chunks were all acked, and
        # every lost credit was refunded.
        assert sorted(client.acked) == sorted(
            set(range(4)) - set(client.dropped)
        )
        assert client.credits == 4
        assert server.registry.counter("gateway.drops") == 1
        client.close()
    finally:
        stall.gate.set()
        handle.stop(drain=False, flush=False)
        service.close()


def test_block_policy_starves_credits_not_memory():
    """Under ``block``, a slow service stalls the client's credit
    window instead of queueing unboundedly; the stall is counted."""
    service = make_service()
    server = GatewayServer(
        service, credits=2, policy=BackpressurePolicy.BLOCK
    )
    handle = server.run_in_thread()
    try:
        _, _, chunks = _workload()
        client = IngestClient("127.0.0.1", handle.port)
        stall = _StalledSession(server)
        stall.install()

        client.push(0, chunks[0])
        assert stall.entered.wait(timeout=10)
        client.push(1, chunks[1])
        assert client.credits == 0

        done = threading.Event()

        def push_third():
            client.push(2, chunks[2])  # must block awaiting a refund
            done.set()

        thread = threading.Thread(target=push_third, daemon=True)
        thread.start()
        assert not done.wait(timeout=0.5), (
            "push with zero credits returned while the service was "
            "stalled — flow control is not real"
        )
        stall.gate.set()
        assert done.wait(timeout=10)
        thread.join(timeout=10)
        client.drain()
        assert sorted(client.acked) == [0, 1, 2]
        assert client.dropped == []
        assert server.registry.counter("gateway.credit_stalls") >= 1
        client.close()
    finally:
        stall.gate.set()
        handle.stop(drain=False, flush=False)
        service.close()


def test_admin_lifecycle_and_checkpoint(tmp_path):
    """Mid-stream subscribe detects a later-planted copy; stats carry
    the gateway section; checkpoint lands on disk at a chunk barrier."""
    rng = np.random.default_rng(7)
    late_cells = rng.integers(0, CELL_SPACE, size=15)
    _, _, chunks = _workload()
    # Plant the late query's copy in the last 15 frames (seqs 10-11).
    chunks = [chunk.copy() for chunk in chunks]
    tail = np.concatenate(chunks[10:])
    tail[5:] = late_cells
    chunks[10], chunks[11] = tail[:10].copy(), tail[10:].copy()

    service = make_service()
    server = GatewayServer(
        service, credits=4, checkpoint_dir=tmp_path
    )
    handle = server.run_in_thread()
    try:
        admin = AdminClient("127.0.0.1", handle.port)
        client = IngestClient("127.0.0.1", handle.port)

        for seq in range(6):
            client.push(seq, chunks[seq])
        client.drain()

        shard = admin.subscribe(2, late_cells, 15, label="late")
        assert shard >= 0
        qids = {entry["qid"] for entry in admin.list_queries()}
        assert qids == {0, 1, 2}

        for seq in range(6, len(chunks)):
            client.push(seq, chunks[seq])
        total = client.end()

        matched_qids = {m.qid for m in service.collector.matches}
        assert 2 in matched_qids, "mid-stream subscription never fired"
        assert total == len(service.collector.matches)

        stats = admin.stats()
        assert stats["gateway"]["counters"]["gateway.chunks"] == 12
        path = admin.checkpoint()
        assert (tmp_path / path).exists() or __import__(
            "pathlib"
        ).Path(path).exists()

        admin.unsubscribe(2)
        qids = {entry["qid"] for entry in admin.list_queries()}
        assert qids == {0, 1}

        admin.close()
        client.close()
    finally:
        handle.stop(drain=False, flush=False)
        service.close()


def test_graceful_drain_sends_goaway_and_leaks_nothing():
    """Shutdown must flush the tail, goaway the clients with resume
    state, join every thread, and release the port."""
    before = {t.name for t in threading.enumerate()}
    reference, _ = _reference_run("thread")
    _, _, chunks = _workload()
    service = make_service()
    server = GatewayServer(service, credits=4)
    handle = server.run_in_thread()
    port = handle.port

    watcher = WatchClient("127.0.0.1", port, credits=1 << 16)
    client = IngestClient("127.0.0.1", port)
    for seq, chunk in enumerate(chunks):
        client.push(seq, chunk)
    client.drain()

    # Drain with flush: the unflushed window tail must be processed,
    # remaining matches pushed, and everyone told to go away.
    handle.stop(drain=True, flush=True)
    service.close()

    watched = [_match_tuple(event) for event in watcher.matches()]
    assert watched == reference
    assert server.registry.counter("gateway.goaways") >= 1
    watcher.close()
    client.close()

    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", port), timeout=0.5)

    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        leaked = {
            t.name for t in threading.enumerate() if t.is_alive()
        } - before
        if not leaked:
            break
        time.sleep(0.05)
    assert not leaked, f"threads leaked across shutdown: {leaked}"


def test_shard_restart_starves_credits_and_keeps_parity():
    """A mid-stream worker kill under supervision is invisible on the
    wire: the ingest session only ever sees flow control (credit
    starvation while the shard restarts and its batches replay), never
    a ``chunk_error``, and the final stream is bit-for-bit the
    undisturbed reference."""
    reference, _ = _reference_run("thread")
    assert reference, "workload must produce matches to be a real test"

    _, _, chunks = _workload()
    service = make_service(
        supervise=True,
        chaos=ChaosPlan.parse("kill:0@3"),
        supervisor=SupervisorConfig(recv_deadline=1.0),
    )
    server = GatewayServer(service, credits=1)
    handle = server.run_in_thread()
    try:
        watcher = WatchClient("127.0.0.1", handle.port, credits=1 << 16)
        client = IngestClient("127.0.0.1", handle.port)
        for seq, chunk in enumerate(chunks):
            client.push(seq, chunk)
        total = client.end()

        # The crash surfaced as backpressure, not as an error.
        assert sorted(client.acked) == list(range(len(chunks)))
        assert client.dropped == []
        assert server.registry.counter("gateway.errors") == 0
        assert server.registry.counter("gateway.credit_stalls") >= 1
        assert service.registry.counter("serve.supervisor.restarts") >= 1

        # Watchers see every post-recovery match exactly once.
        watched = [_match_tuple(event) for event in watcher.matches()]
        assert watched == reference
        assert total == len(reference)
        watcher.close()
        client.close()
    finally:
        handle.stop(drain=False, flush=False)
        service.close()


def test_quarantined_shard_degrades_queries_not_the_stream():
    """When the restart budget is exhausted the shard is quarantined:
    its queries report ``degraded`` over admin (flagged, not dropped),
    the ended reply is marked partial, and the surviving shard's
    matches are bit-for-bit the reference's."""
    reference, _ = _reference_run("thread")
    _, _, chunks = _workload()
    service = make_service(
        supervise=True,
        chaos=ChaosPlan.parse("kill:0@3"),
        supervisor=SupervisorConfig(recv_deadline=1.0, max_restarts=0),
    )
    server = GatewayServer(service, credits=4)
    handle = server.run_in_thread()
    try:
        watcher = WatchClient("127.0.0.1", handle.port, credits=1 << 16)
        admin = AdminClient("127.0.0.1", handle.port)
        client = IngestClient("127.0.0.1", handle.port)
        for seq, chunk in enumerate(chunks):
            client.push(seq, chunk)
        total = client.end()

        assert service.registry.counter(
            "serve.supervisor.quarantines"
        ) == 1
        degraded = service.degraded_shards()
        assert degraded, "the kill should have exhausted the budget"
        status = {
            entry["qid"]: entry["status"]
            for entry in admin.list_queries()
        }
        degraded_qids = {
            qid for qid, state in status.items() if state == "degraded"
        }
        assert degraded_qids == {
            qid for qid in status
            if service.shard_of(qid) in degraded
        }
        assert degraded_qids and degraded_qids != set(status)
        assert service.partial

        # The quarantined shard stops contributing after its last
        # consumed reply (stream message 3 = basic window 4 on this
        # workload); the surviving shard is untouched.
        expected = [
            m for m in reference
            if m[0] not in degraded_qids or m[1] < 4
        ]
        watched = [_match_tuple(event) for event in watcher.matches()]
        assert watched == expected
        assert total == len(expected)
        watcher.close()
        admin.close()
        client.close()
    finally:
        handle.stop(drain=False, flush=False)
        service.close()
