"""Tests for the scoring rule, metrics, reporting and runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DetectorConfig
from repro.core.results import Match
from repro.errors import EvaluationError
from repro.evaluation.metrics import (
    PrecisionRecall,
    is_correct_match,
    score_matches,
)
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import PreparedWorkload, run_detector
from repro.workloads.groundtruth import GroundTruth, Occurrence

W = 10  # basic window length in frames for these tests


def _match(qid=0, end=60, start=None):
    start = (end - 40) if start is None else start
    return Match(qid=qid, window_index=end // W, start_frame=start,
                 end_frame=end, similarity=0.8)


def _gt(*spans, stream_frames=1000):
    occurrences = [Occurrence(qid, b, e) for qid, b, e in spans]
    return GroundTruth(occurrences, stream_frames=stream_frames)


class TestCorrectnessRule:
    def test_position_inside_rule(self):
        gt = _gt((0, 50, 90))
        # Rule: begin + w <= p <= end + w -> [60, 100].
        assert is_correct_match(_match(end=60), gt.occurrences_of(0), W)
        assert is_correct_match(_match(end=100), gt.occurrences_of(0), W)
        assert not is_correct_match(_match(end=59), gt.occurrences_of(0), W)
        assert not is_correct_match(_match(end=101), gt.occurrences_of(0), W)

    def test_no_occurrences_never_correct(self):
        assert not is_correct_match(_match(), [], W)

    def test_any_occurrence_suffices(self):
        occurrences = [Occurrence(0, 500, 600), Occurrence(0, 50, 90)]
        assert is_correct_match(_match(end=70), occurrences, W)

    def test_rejects_bad_window(self):
        with pytest.raises(EvaluationError):
            is_correct_match(_match(), [], 0)


class TestScoreMatches:
    def test_perfect_run(self):
        gt = _gt((0, 50, 90))
        result = score_matches([_match(end=70), _match(end=80)], gt, W)
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.num_detections == 1  # merged into one detection
        assert result.num_matches == 2

    def test_false_positive_hurts_precision(self):
        gt = _gt((0, 50, 90))
        matches = [_match(end=70), _match(end=700, start=660)]
        result = score_matches(matches, gt, W)
        assert result.num_detections == 2
        assert result.precision == 0.5
        assert result.recall == 1.0

    def test_missed_occurrence_hurts_recall(self):
        gt = _gt((0, 50, 90), (0, 500, 540))
        result = score_matches([_match(end=70)], gt, W)
        assert result.recall == 0.5
        assert result.num_detected_occurrences == 1

    def test_no_matches(self):
        gt = _gt((0, 50, 90))
        result = score_matches([], gt, W)
        assert result.precision == 1.0  # nothing wrong was reported
        assert result.recall == 0.0

    def test_wrong_query_is_false_positive(self):
        gt = _gt((0, 50, 90))
        result = score_matches([_match(qid=1, end=70)], gt, W)
        assert result.precision == 0.0
        assert result.recall == 0.0

    def test_adjacent_matches_merge_within_window(self):
        gt = _gt((0, 50, 90))
        matches = [
            _match(end=70, start=40),
            _match(end=75, start=45),
            _match(end=85, start=50),
        ]
        result = score_matches(matches, gt, W)
        assert result.num_detections == 1

    def test_distant_matches_stay_separate(self):
        gt = _gt((0, 50, 90), (0, 300, 340))
        matches = [_match(end=70), _match(end=320, start=290)]
        result = score_matches(matches, gt, W)
        assert result.num_detections == 2
        assert result.precision == 1.0
        assert result.recall == 1.0

    def test_f1(self):
        pr = PrecisionRecall(
            precision=0.5, recall=1.0, num_detections=2,
            num_correct_detections=1, num_occurrences=1,
            num_detected_occurrences=1, num_matches=2,
        )
        assert pr.f1 == pytest.approx(2 / 3)

    def test_f1_zero(self):
        pr = PrecisionRecall(0.0, 0.0, 0, 0, 1, 0, 0)
        assert pr.f1 == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(EvaluationError):
            score_matches([], _gt((0, 1, 2)), 0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.23456], ["bb", 2]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_format_series(self):
        text = format_series("recall", [1, 2], [0.5, 0.75])
        assert text == "recall: 1=0.5  2=0.75"

    def test_format_series_rejects_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1], [1, 2])


class TestRunner:
    def test_prepared_shapes(self, vs1_prepared, small_library):
        assert vs1_prepared.stream_cell_ids.ndim == 1
        assert set(vs1_prepared.query_cell_ids) == set(small_library.query_ids)
        for qid, clip in small_library:
            assert vs1_prepared.query_frames[qid] == clip.num_frames
        assert vs1_prepared.prepare_seconds > 0

    def test_subset_queries(self, vs1_prepared):
        subset = vs1_prepared.subset_queries(2)
        assert sorted(subset.query_cell_ids) == [0, 1]
        assert subset.stream_cell_ids is vs1_prepared.stream_cell_ids

    def test_run_detector_vs1_perfect(self, vs1_prepared):
        config = DetectorConfig(num_hashes=192, threshold=0.7)
        result = run_detector(vs1_prepared, config)
        assert result.quality.recall == 1.0
        assert result.quality.precision == 1.0
        assert result.cpu_seconds > 0
        assert result.stats.windows_processed > 0

    def test_run_detector_vs2_detects_most(self, vs2_prepared):
        config = DetectorConfig(num_hashes=192, threshold=0.7)
        result = run_detector(vs2_prepared, config)
        assert result.quality.recall >= 0.5
        assert result.quality.precision >= 0.8

    def test_family_seed_changes_estimates(self, vs1_prepared):
        config = DetectorConfig(num_hashes=64, threshold=0.7)
        a = run_detector(vs1_prepared, config, family_seed=0)
        b = run_detector(vs1_prepared, config, family_seed=1)
        # Different hash families give different similarity estimates.
        sims_a = sorted(round(m.similarity, 6) for m in a.matches)
        sims_b = sorted(round(m.similarity, 6) for m in b.matches)
        assert sims_a != sims_b
