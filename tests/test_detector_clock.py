"""Regression tests for the detector's stream clock.

``StreamingDetector.process_cell_ids`` used to derive the frame offset of
a new chunk as ``windows_processed * window_frames``. After any partial
window (a chunk not ending on a window boundary) that expression
overstates the true offset, silently corrupting every later
``Match.start_frame``. The clock now tracks exact frames processed and
refuses mid-stream pushes after a partial window.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.query import QuerySet
from repro.errors import DetectionError
from repro.minhash.family import MinHashFamily

WINDOW_FRAMES = 10  # window_seconds=10 at 1 key frame / s


def _detector(threshold=0.7):
    family = MinHashFamily(num_hashes=128, seed=5)
    queries = QuerySet.from_cell_ids(
        {0: np.arange(1000, 1040)}, {0: 40}, family
    )
    config = DetectorConfig(
        num_hashes=128, threshold=threshold, window_seconds=10.0
    )
    return StreamingDetector(config, queries, 1.0)


class TestExactFrameClock:
    def test_frames_processed_counts_partial_tail(self, rng):
        detector = _detector()
        detector.process_cell_ids(rng.integers(0, 500, size=15))
        assert detector.stats.windows_processed == 2
        assert detector.frames_processed == 15  # not 2 * 10 == 20
        assert detector.stats.partial_windows == 1

    def test_aligned_chunks_keep_exact_clock(self, rng):
        detector = _detector()
        for size in (10, 30, 20):
            detector.process_cell_ids(rng.integers(0, 500, size=size))
        assert detector.frames_processed == 60
        assert detector.stats.windows_processed == 6
        assert detector.stats.partial_windows == 0

    def test_window_start_frames_continue_across_chunks(self, rng):
        """Chunked aligned pushes yield the same window clock as one shot."""
        stream = rng.integers(0, 500, size=60)
        chunked = _detector()
        chunked.process_cell_ids(stream[:30])
        chunked.process_cell_ids(stream[30:])
        oneshot = _detector()
        oneshot.process_cell_ids(stream)
        assert chunked.frames_processed == oneshot.frames_processed == 60


class TestPartialWindowGuard:
    def test_push_after_partial_window_rejected(self, rng):
        """Regression: the second push used to be accepted with its
        windows shifted to frame 20 instead of 15 — every subsequent
        Match.start_frame would have been off by 5 frames."""
        detector = _detector()
        detector.process_cell_ids(rng.integers(0, 500, size=15))
        with pytest.raises(DetectionError):
            detector.process_cell_ids(rng.integers(0, 500, size=10))

    def test_empty_push_after_partial_window_is_harmless(self, rng):
        detector = _detector()
        detector.process_cell_ids(rng.integers(0, 500, size=15))
        assert detector.process_cell_ids(np.empty(0, dtype=np.int64)) == []

    def test_direct_partial_process_window_sets_guard(self, rng):
        from repro.minhash.windows import iter_basic_windows

        detector = _detector()
        window = next(
            iter_basic_windows(
                rng.integers(0, 500, size=6),
                WINDOW_FRAMES,
                detector.queries.family,
            )
        )
        detector.process_window(window)
        assert detector.frames_processed == 6
        assert detector.stats.partial_windows == 1
        with pytest.raises(DetectionError):
            detector.process_cell_ids(rng.integers(0, 500, size=10))

    def test_match_start_frames_exact_when_stream_ends_partial(self):
        """A copy detected in a stream with a partial tail reports the
        same span as the aligned prefix would."""
        copy = np.arange(1000, 1040)
        rng = np.random.default_rng(123)
        noise = rng.integers(100_000, 500_000, size=20)
        stream = np.concatenate([noise, copy, rng.integers(
            100_000, 500_000, size=7)])  # 67 frames: ends on a 7-frame tail
        detector = _detector(threshold=0.6)
        matches = detector.process_cell_ids(stream)
        assert matches, "the embedded copy must be detected"
        assert any(m.start_frame == 20 for m in matches)
        assert detector.frames_processed == 67
