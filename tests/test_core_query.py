"""Tests for Query/QuerySet and the match/detection records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import Query, QuerySet
from repro.core.results import Match, merge_matches
from repro.errors import DetectionError
from repro.minhash.family import MinHashFamily


def _query_set(family, num=3):
    cell_ids = {qid: np.arange(qid * 100, qid * 100 + 20) for qid in range(num)}
    frames = {qid: 30 + qid * 10 for qid in range(num)}
    return QuerySet.from_cell_ids(cell_ids, frames, family)


class TestQuery:
    def test_max_candidate_windows(self, family):
        query = Query(
            qid=0,
            cell_ids=np.arange(5),
            num_frames=60,
            sketch=family.sketch(np.arange(5)),
        )
        # ceil(2.0 * 60 / 10) = 12
        assert query.max_candidate_windows(10, 2.0) == 12
        assert query.max_candidate_windows(7, 1.5) == 13

    def test_rejects_empty_ids(self, family):
        with pytest.raises(DetectionError):
            Query(qid=0, cell_ids=np.array([]), num_frames=5,
                  sketch=family.empty_sketch())

    def test_rejects_bad_frames(self, family):
        with pytest.raises(DetectionError):
            Query(qid=0, cell_ids=np.arange(3), num_frames=0,
                  sketch=family.sketch(np.arange(3)))

    def test_rejects_bad_window_frames(self, family):
        query = Query(qid=0, cell_ids=np.arange(3), num_frames=5,
                      sketch=family.sketch(np.arange(3)))
        with pytest.raises(DetectionError):
            query.max_candidate_windows(0, 2.0)


class TestQuerySet:
    def test_construction(self, family):
        queries = _query_set(family)
        assert len(queries) == 3
        assert queries.query_ids == [0, 1, 2]
        assert 1 in queries and 99 not in queries

    def test_sketches_offline(self, family):
        queries = _query_set(family)
        sketches = queries.sketches()
        expected = family.sketch(np.arange(100, 120))
        assert np.array_equal(sketches[1].values, expected.values)

    def test_max_windows_map(self, family):
        queries = _query_set(family)
        caps = queries.max_windows_map(window_frames=10, tempo_scale=2.0)
        assert caps[0] == 6   # ceil(2*30/10)
        assert caps[2] == 10  # ceil(2*50/10)

    def test_get_unknown_rejected(self, family):
        with pytest.raises(DetectionError):
            _query_set(family).get(42)

    def test_duplicate_qid_rejected(self, family):
        query = Query(qid=0, cell_ids=np.arange(3), num_frames=5,
                      sketch=family.sketch(np.arange(3)))
        with pytest.raises(DetectionError):
            QuerySet([query, query], family)

    def test_cross_family_rejected(self, family):
        other = MinHashFamily(num_hashes=family.num_hashes, seed=999)
        query = Query(qid=0, cell_ids=np.arange(3), num_frames=5,
                      sketch=other.sketch(np.arange(3)))
        with pytest.raises(DetectionError):
            QuerySet([query], family)

    def test_empty_rejected(self, family):
        with pytest.raises(DetectionError):
            QuerySet([], family)

    def test_add_remove(self, family):
        queries = _query_set(family)
        new = Query(qid=9, cell_ids=np.arange(4), num_frames=8,
                    sketch=family.sketch(np.arange(4)))
        queries.add(new)
        assert 9 in queries
        queries.remove(9)
        assert 9 not in queries

    def test_add_duplicate_rejected(self, family):
        queries = _query_set(family)
        clone = Query(qid=0, cell_ids=np.arange(3), num_frames=5,
                      sketch=family.sketch(np.arange(3)))
        with pytest.raises(DetectionError):
            queries.add(clone)

    def test_remove_last_rejected(self, family):
        queries = _query_set(family, num=1)
        with pytest.raises(DetectionError):
            queries.remove(0)

    def test_missing_frame_count_rejected(self, family):
        with pytest.raises(DetectionError):
            QuerySet.from_cell_ids({0: np.arange(3)}, {}, family)


class TestMatchRecords:
    def test_position_is_end(self):
        match = Match(qid=1, window_index=4, start_frame=10, end_frame=30,
                      similarity=0.8)
        assert match.position_frame == 30

    def test_merge_overlapping(self):
        matches = [
            Match(1, 0, 0, 20, 0.7),
            Match(1, 1, 10, 30, 0.9),
            Match(1, 5, 100, 120, 0.75),
        ]
        detections = merge_matches(matches)
        assert len(detections) == 2
        first = detections[0]
        assert (first.start_frame, first.end_frame) == (0, 30)
        assert first.peak_similarity == 0.9
        assert first.num_matches == 2

    def test_merge_respects_gap(self):
        matches = [Match(1, 0, 0, 10, 0.7), Match(1, 3, 14, 24, 0.7)]
        assert len(merge_matches(matches, gap_frames=0)) == 2
        assert len(merge_matches(matches, gap_frames=5)) == 1

    def test_merge_separates_queries(self):
        matches = [Match(1, 0, 0, 10, 0.7), Match(2, 0, 0, 10, 0.7)]
        assert len(merge_matches(matches)) == 2

    def test_merge_empty(self):
        assert merge_matches([]) == []

    def test_merge_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            merge_matches([], gap_frames=-1)

    def test_merge_sorted_output(self):
        matches = [Match(2, 0, 50, 60, 0.7), Match(1, 0, 0, 10, 0.7)]
        detections = merge_matches(matches)
        assert [d.qid for d in detections] == [1, 2]
