"""Tests for GOP resynchronisation and the typed-error contract.

The resilient scanner promises three things: corruption raises only the
codec's typed errors (never a bare ``ValueError``/``IndexError``/
``struct.error``), every GOP that still parses after a corruption point
is recovered, and recovered key frames carry trustworthy absolute slots
whenever anchoring is possible (stream head, clean tail).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.codec.bitstream import BitstreamReader
from repro.codec.gop import (
    _read_header,
    decode_dc_coefficients,
    encode_video,
    walk_dc_record,
)
from repro.codec.resync import (
    resilient_dc_scan,
    resync_to_next_gop,
)
from repro.errors import BitstreamError, CodecError
from repro.video.synth import ClipSynthesizer


def _encoded(seconds=4.0, gop_size=6, entropy=False, seed=7):
    synth = ClipSynthesizer(seed=seed)
    clip = synth.generate_clip(seconds, label="resync", fps=12.0)
    return encode_video(
        clip.frames,
        fps=clip.fps,
        quality=75,
        gop_size=gop_size,
        entropy_coding=entropy,
    )


def _stream_geometry(encoded):
    """(header_end, num_blocks, entropy) parsed from the bitstream."""
    reader = BitstreamReader(encoded.data)
    width, height, block_size, _q, _g, _n, _fps, entropy = _read_header(
        reader, len(encoded.data)
    )
    grid_cols = -(-width // block_size)
    grid_rows = -(-height // block_size)
    return reader.position, grid_rows * grid_cols, entropy


def _record_offsets(encoded):
    """Byte offset and frame type of every record, by walking cleanly."""
    start, num_blocks, entropy = _stream_geometry(encoded)
    reader = BitstreamReader(encoded.data)
    reader.seek(start)
    offsets = []
    for _ in range(encoded.num_frames):
        position = reader.position
        frame_type, _levels = walk_dc_record(reader, num_blocks, entropy)
        offsets.append((position, frame_type))
    return offsets


class TestWalkDcRecord:
    def test_walks_every_record_of_a_clean_stream(self):
        encoded = _encoded()
        offsets = _record_offsets(encoded)
        assert len(offsets) == encoded.num_frames
        i_count = sum(1 for _, t in offsets if t == b"I")
        assert i_count == encoded.num_keyframes
        # I frames sit exactly on the GOP cadence.
        for index, (_, frame_type) in enumerate(offsets):
            assert (frame_type == b"I") == (index % encoded.gop_size == 0)

    def test_rejects_unknown_frame_type(self):
        encoded = _encoded()
        start, num_blocks, entropy = _stream_geometry(encoded)
        data = bytearray(encoded.data)
        data[start] = 0x00  # smash the first record's type byte
        reader = BitstreamReader(bytes(data))
        reader.seek(start)
        with pytest.raises(BitstreamError):
            walk_dc_record(reader, num_blocks, entropy)


@pytest.mark.parametrize("entropy", [False, True])
class TestTypedErrorsOnly:
    """Random damage must surface as CodecError, nothing rawer."""

    def test_bit_flip_fuzz(self, entropy):
        encoded = _encoded(entropy=entropy)
        rng = np.random.default_rng(13)
        for _ in range(40):
            data = bytearray(encoded.data)
            for _ in range(int(rng.integers(1, 5))):
                position = int(rng.integers(0, len(data)))
                data[position] ^= 1 << int(rng.integers(0, 8))
            damaged = dataclasses.replace(encoded, data=bytes(data))
            try:
                list(decode_dc_coefficients(damaged))
            except CodecError:
                pass  # BitstreamError is a CodecError; both are legal

    def test_truncation_fuzz(self, entropy):
        encoded = _encoded(entropy=entropy)
        rng = np.random.default_rng(17)
        for _ in range(40):
            cut = int(rng.integers(0, len(encoded.data)))
            damaged = dataclasses.replace(encoded, data=encoded.data[:cut])
            try:
                list(decode_dc_coefficients(damaged))
            except CodecError:
                pass


class TestResyncToNextGop:
    def test_finds_the_true_next_keyframe(self):
        encoded = _encoded()
        offsets = _record_offsets(encoded)
        _start, num_blocks, entropy = _stream_geometry(encoded)
        keyframes = [o for o, t in offsets if t == b"I"]
        # From just past the first I record, the scan locks onto the
        # second one — not a stray 0x49 inside coefficient data.
        found = resync_to_next_gop(
            encoded.data,
            keyframes[0] + 1,
            num_blocks=num_blocks,
            entropy=entropy,
        )
        assert found == keyframes[1]

    def test_none_when_no_keyframe_remains(self):
        encoded = _encoded()
        offsets = _record_offsets(encoded)
        _start, num_blocks, entropy = _stream_geometry(encoded)
        last_keyframe = max(o for o, t in offsets if t == b"I")
        assert (
            resync_to_next_gop(
                encoded.data,
                last_keyframe + 1,
                num_blocks=num_blocks,
                entropy=entropy,
            )
            is None
        )


@pytest.mark.parametrize("entropy", [False, True])
class TestResilientScan:
    def test_clean_stream_fully_anchored(self, entropy):
        encoded = _encoded(entropy=entropy)
        scan = resilient_dc_scan(encoded)
        assert scan.decode_errors == 0
        assert scan.resyncs == 0
        assert scan.reached_end
        assert scan.keyframes_decoded == encoded.num_keyframes
        assert len(scan.segments) == 1
        assert scan.segments[0].kf_slots == list(
            range(encoded.num_keyframes)
        )
        clean = [grid for _, grid in decode_dc_coefficients(encoded)]
        for got, expected in zip(scan.segments[0].dc_grids, clean):
            np.testing.assert_array_equal(got, expected)

    def test_single_corruption_recovers_every_other_gop(self, entropy):
        encoded = _encoded(entropy=entropy)
        offsets = _record_offsets(encoded)
        # Smash the record right after the second keyframe: the head
        # stays anchored with 2 key frames, the tail back-anchors.
        keyframes = [i for i, (_, t) in enumerate(offsets) if t == b"I"]
        victim = offsets[keyframes[1] + 1][0]
        data = bytearray(encoded.data)
        data[victim] = 0x00
        damaged = dataclasses.replace(encoded, data=bytes(data))
        scan = resilient_dc_scan(damaged)
        assert scan.decode_errors >= 1
        assert scan.resyncs >= 1
        assert scan.keyframes_decoded == encoded.num_keyframes
        clean = [grid for _, grid in decode_dc_coefficients(encoded)]
        slots_seen = []
        for segment in scan.segments:
            assert segment.kf_slots is not None  # head + tail both anchor
            for slot, grid in zip(segment.kf_slots, segment.dc_grids):
                np.testing.assert_array_equal(grid, clean[slot])
                slots_seen.append(slot)
        assert slots_seen == list(range(encoded.num_keyframes))

    def test_tail_corruption_does_not_duplicate_segments(self, entropy):
        """Regression: corruption after the final key frame used to
        append the head segment twice (the early 'everything in hand'
        break left the open segment to be closed again)."""
        encoded = _encoded(entropy=entropy)
        offsets = _record_offsets(encoded)
        last_keyframe = max(
            i for i, (_, t) in enumerate(offsets) if t == b"I"
        )
        victim = offsets[last_keyframe + 1][0]  # a P record past all Is
        data = bytearray(encoded.data)
        data[victim] = 0x00
        damaged = dataclasses.replace(encoded, data=bytes(data))
        scan = resilient_dc_scan(damaged)
        assert scan.keyframes_decoded == encoded.num_keyframes
        assert len({id(s) for s in scan.segments}) == len(scan.segments)

    def test_two_corruption_points_leave_interior_unanchored(self, entropy):
        encoded = _encoded(seconds=6.0, entropy=entropy)
        offsets = _record_offsets(encoded)
        keyframes = [i for i, (_, t) in enumerate(offsets) if t == b"I"]
        assert len(keyframes) >= 4
        data = bytearray(encoded.data)
        data[offsets[keyframes[1] + 1][0]] = 0x00
        data[offsets[keyframes[2] + 1][0]] = 0x00
        damaged = dataclasses.replace(encoded, data=bytes(data))
        scan = resilient_dc_scan(damaged)
        anchoring = [s.kf_slots is not None for s in scan.segments]
        assert anchoring[0] and anchoring[-1]
        assert not all(anchoring[1:-1])
        assert scan.keyframes_decoded <= encoded.num_keyframes


def test_header_corruption_raises_codec_error():
    encoded = _encoded()
    data = bytearray(encoded.data)
    data[0] ^= 0xFF  # destroy the magic
    damaged = dataclasses.replace(encoded, data=bytes(data))
    with pytest.raises(CodecError):
        resilient_dc_scan(damaged)
