"""Tests for the synthetic content generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.dc_extract import block_means_from_frames
from repro.video.formats import VideoFormat
from repro.video.synth import ClipSynthesizer, SynthesisConfig


class TestSynthesisConfig:
    def test_defaults_valid(self):
        SynthesisConfig()

    def test_rejects_bad_shot_range(self):
        with pytest.raises(ValueError):
            SynthesisConfig(shot_seconds_min=5.0, shot_seconds_max=1.0)

    def test_rejects_bad_luminance_range(self):
        with pytest.raises(ValueError):
            SynthesisConfig(luminance_low=100.0, luminance_high=50.0)


class TestClipSynthesizer:
    def test_determinism_by_label(self):
        synth = ClipSynthesizer(seed=3)
        a = synth.generate_clip(10.0, label="x", fps=2.0)
        b = synth.generate_clip(10.0, label="x", fps=2.0)
        assert np.array_equal(a.frames, b.frames)

    def test_labels_differ(self):
        synth = ClipSynthesizer(seed=3)
        a = synth.generate_clip(10.0, label="x", fps=2.0)
        b = synth.generate_clip(10.0, label="y", fps=2.0)
        assert not np.array_equal(a.frames, b.frames)

    def test_seeds_differ(self):
        a = ClipSynthesizer(seed=1).generate_clip(10.0, label="x", fps=2.0)
        b = ClipSynthesizer(seed=2).generate_clip(10.0, label="x", fps=2.0)
        assert not np.array_equal(a.frames, b.frames)

    def test_order_independent(self):
        synth1 = ClipSynthesizer(seed=3)
        synth1.generate_clip(5.0, label="first", fps=2.0)
        later = synth1.generate_clip(10.0, label="x", fps=2.0)
        fresh = ClipSynthesizer(seed=3).generate_clip(10.0, label="x", fps=2.0)
        assert np.array_equal(later.frames, fresh.frames)

    def test_duration_and_fps(self):
        clip = ClipSynthesizer(seed=0).generate_clip(12.0, label="x", fps=2.5)
        assert clip.num_frames == 30
        assert clip.fps == 2.5

    def test_default_fps_from_format(self):
        fmt = VideoFormat("t", 24, 16, 4.0)
        synth = ClipSynthesizer(SynthesisConfig(video_format=fmt), seed=0)
        clip = synth.generate_clip(3.0, label="x")
        assert clip.fps == 4.0
        assert clip.num_frames == 12
        assert (clip.height, clip.width) == (16, 24)

    def test_luminance_in_range(self):
        clip = ClipSynthesizer(seed=0).generate_clip(20.0, label="x", fps=2.0)
        assert clip.frames.min() >= 0.0
        assert clip.frames.max() <= 255.0

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(Exception):
            ClipSynthesizer(seed=0).generate_clip(0.0, label="x")

    def test_minimum_one_frame(self):
        clip = ClipSynthesizer(seed=0).generate_clip(0.01, label="x", fps=1.0)
        assert clip.num_frames == 1


class TestContentStatistics:
    """The properties the detector relies on (see module docstring)."""

    def test_shot_structure_exists(self):
        # Block features should change abruptly at shot cuts: the maximum
        # frame-to-frame feature jump must far exceed the median jump.
        clip = ClipSynthesizer(seed=11).generate_clip(60.0, label="s", fps=2.0)
        means = block_means_from_frames(clip.frames)
        jumps = np.abs(np.diff(means, axis=0)).mean(axis=1)
        assert jumps.max() > 5 * np.median(jumps)

    def test_within_shot_coherence(self):
        # Consecutive frames are usually similar: median jump is small
        # relative to the overall feature spread.
        clip = ClipSynthesizer(seed=11).generate_clip(60.0, label="s", fps=2.0)
        means = block_means_from_frames(clip.frames)
        jumps = np.abs(np.diff(means, axis=0)).mean(axis=1)
        spread = means.max() - means.min()
        assert np.median(jumps) < 0.1 * spread

    def test_clips_decorrelate(self):
        synth = ClipSynthesizer(seed=11)
        a = synth.generate_clip(30.0, label="a", fps=2.0)
        b = synth.generate_clip(30.0, label="b", fps=2.0)
        means_a = block_means_from_frames(a.frames).mean(axis=0)
        means_b = block_means_from_frames(b.frames).mean(axis=0)
        # Different clips have different spatial layouts.
        assert np.abs(means_a - means_b).mean() > 5.0

    def test_motion_jitters_features(self):
        # Within-shot feature jitter must be non-zero (the dithering the
        # set-similarity measure depends on).
        synth = ClipSynthesizer(seed=11)
        clip = synth.generate_clip(10.0, label="m", fps=2.0)
        means = block_means_from_frames(clip.frames)
        per_block_std = means.std(axis=0)
        assert per_block_std.mean() > 0.5
