"""Smoke tests: every example script runs to completion and prints its
headline lines. Examples are the public face of the library; a refactor
that breaks one should fail the suite, not a user."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


@pytest.mark.slow
def test_quickstart():
    output = _run("quickstart.py")
    assert "Precision: 1.00" in output
    assert "Recall: 1.00" in output
    assert "Detections" in output


@pytest.mark.slow
def test_advertisement_monitoring():
    output = _run("advertisement_monitoring.py")
    assert "aired in full" in output
    assert "TAMPERED" in output
    assert "late subscription" in output


@pytest.mark.slow
def test_reordered_copy_detection():
    output = _run("reordered_copy_detection.py")
    assert "Bit : DETECTED" in output
    assert "Seq : missed" in output
    assert "Warp: missed" in output


@pytest.mark.slow
def test_compressed_domain_pipeline():
    output = _run("compressed_domain_pipeline.py")
    assert "Partial decode" in output
    assert "Detected the re-compressed copy" in output


@pytest.mark.slow
def test_monitoring_service():
    output = _run("monitoring_service.py")
    assert "shift change" in output
    assert "OK — aired assets detected" in output
