"""End-to-end integration tests across all subsystems.

These are the claims of the paper stated as assertions, on scaled-down
workloads: VS1 copies are found perfectly; VS2 copies (attacked and
reordered) are still found with high precision; the Seq and Warp
baselines break on reordered copies; the compressed-domain path can
replace the pixel path without changing detections materially.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.seq import SeqMatcher, ordinal_signature
from repro.baselines.warp import WarpMatcher
from repro.codec.gop import encode_video
from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.core.query import QuerySet
from repro.core.results import Match
from repro.core.detector import StreamingDetector
from repro.evaluation.metrics import score_matches
from repro.evaluation.runner import run_detector
from repro.features.dc_extract import block_means_from_frames
from repro.features.pipeline import FingerprintExtractor
from repro.minhash.family import MinHashFamily


class TestHeadlineClaims:
    def test_vs1_perfect_detection(self, vs1_prepared):
        result = run_detector(vs1_prepared, DetectorConfig(num_hashes=256))
        assert result.quality.precision == 1.0
        assert result.quality.recall == 1.0

    def test_vs2_robust_detection(self, vs2_prepared):
        """Attacked + reordered copies still detected (Figure 13)."""
        result = run_detector(vs2_prepared, DetectorConfig(num_hashes=256))
        assert result.quality.precision >= 0.9
        assert result.quality.recall >= 0.6

    def test_vs2_lower_threshold_raises_recall(self, vs2_prepared):
        strict = run_detector(
            vs2_prepared, DetectorConfig(num_hashes=256, threshold=0.8)
        )
        loose = run_detector(
            vs2_prepared, DetectorConfig(num_hashes=256, threshold=0.55)
        )
        assert loose.quality.recall >= strict.quality.recall

    def test_seq_baseline_breaks_on_vs2(self, vs2_stream, small_library):
        """Hampapur-style rigid matching misses reordered copies at any
        threshold tight enough to keep precision (Figure 14's shape)."""
        extractor = FingerprintExtractor()
        stream_ranks = ordinal_signature(
            block_means_from_frames(vs2_stream.clip.frames)
        )
        window_frames = 10
        matcher = SeqMatcher(distance_threshold=0.15, gap_frames=window_frames)
        matches = []
        for qid, clip in small_library:
            query_ranks = ordinal_signature(block_means_from_frames(clip.frames))
            for hit in matcher.find_matches(query_ranks, stream_ranks):
                matches.append(
                    Match(qid=qid, window_index=0,
                          start_frame=hit["start_frame"],
                          end_frame=hit["end_frame"],
                          similarity=1.0 - hit["distance"])
                )
        quality = score_matches(matches, vs2_stream.ground_truth, window_frames)
        bit = run_detector(
            # Same workload through the paper's method for comparison.
            __import__("repro.evaluation.runner", fromlist=["PreparedWorkload"])
            .PreparedWorkload.prepare(vs2_stream, small_library),
            DetectorConfig(num_hashes=256),
        )
        assert quality.recall < bit.quality.recall

    def test_warp_baseline_weaker_than_bit_on_vs2(
        self, vs2_stream, small_library, vs2_prepared
    ):
        stream_ranks = ordinal_signature(
            block_means_from_frames(vs2_stream.clip.frames)
        )
        window_frames = 10
        matcher = WarpMatcher(
            distance_threshold=0.15, band_width=4, gap_frames=window_frames
        )
        matches = []
        for qid, clip in small_library:
            query_ranks = ordinal_signature(block_means_from_frames(clip.frames))
            for hit in matcher.find_matches(query_ranks, stream_ranks):
                matches.append(
                    Match(qid=qid, window_index=0,
                          start_frame=hit["start_frame"],
                          end_frame=hit["end_frame"],
                          similarity=1.0 - hit["distance"])
                )
        quality = score_matches(matches, vs2_stream.ground_truth, window_frames)
        bit = run_detector(vs2_prepared, DetectorConfig(num_hashes=256))
        assert quality.recall < bit.quality.recall


class TestMaximumRealismWorkload:
    def test_physical_vs2_detected(self, small_profile, small_library):
        """The most faithful attack chain available — RGB-domain color
        alteration, shot-aligned reordering, PAL re-timing — is still
        detected with high quality at the paper's defaults."""
        from repro.evaluation.runner import PreparedWorkload
        from repro.workloads.doctor import StreamDoctor

        stream = StreamDoctor(small_profile, seed=99).build_vs2(
            small_library,
            noise_sigma=2.0,
            reorder_mode="shots",
            chroma_domain=True,
        )
        prepared = PreparedWorkload.prepare(stream, small_library)
        result = run_detector(prepared, DetectorConfig(num_hashes=256))
        assert result.quality.precision >= 0.9
        assert result.quality.recall >= 0.5


class TestCompressedDomainPath:
    def test_detection_across_recompression(self, small_library):
        """The full compressed-domain scenario: the query is sketched from
        one encode, the stream carries a *re-compressed* copy (different
        quality), and both sides go through the partial DC decoder."""
        extractor = FingerprintExtractor()
        clip = small_library.clip(0)
        query_encode = encode_video(
            clip.frames, fps=clip.fps, quality=90, gop_size=1
        )
        copy_encode = encode_video(
            clip.frames, fps=clip.fps, quality=70, gop_size=1
        )
        query_ids = extractor.cell_ids_from_encoded(query_encode)
        copy_ids = extractor.cell_ids_from_encoded(copy_encode)

        family = MinHashFamily(num_hashes=256, seed=0)
        queries = QuerySet.from_cell_ids(
            {0: query_ids}, {0: clip.num_frames}, family
        )
        rng = np.random.default_rng(0)
        filler = rng.integers(50_000, 60_000, size=100)
        stream = np.concatenate([filler, copy_ids, filler])

        detector = StreamingDetector(
            DetectorConfig(num_hashes=256, threshold=0.7),
            queries,
            keyframes_per_second=2.0,
        )
        matches = detector.process_cell_ids(stream)
        assert matches, "re-compressed copy must be detected"
        w = detector.window_frames
        begin, end = 100, 100 + len(copy_ids)
        assert any(
            begin + w <= m.position_frame <= end + w for m in matches
        )


class TestOrderTradeoffs:
    def test_geometric_cheaper_but_no_more_accurate(self, vs1_prepared):
        sequential = run_detector(
            vs1_prepared,
            DetectorConfig(
                num_hashes=192,
                order=CombinationOrder.SEQUENTIAL,
                representation=Representation.SKETCH,
            ),
        )
        geometric = run_detector(
            vs1_prepared,
            DetectorConfig(
                num_hashes=192,
                order=CombinationOrder.GEOMETRIC,
                representation=Representation.SKETCH,
            ),
        )
        assert (
            geometric.stats.sketch_combines < sequential.stats.sketch_combines
        )
        assert geometric.quality.recall <= sequential.quality.recall

    def test_sketch_and_bit_agree_on_quality(self, vs1_prepared):
        bit = run_detector(
            vs1_prepared,
            DetectorConfig(num_hashes=192, representation=Representation.BIT),
        )
        sketch = run_detector(
            vs1_prepared,
            DetectorConfig(num_hashes=192, representation=Representation.SKETCH),
        )
        assert bit.quality.precision == sketch.quality.precision
        assert bit.quality.recall == sketch.quality.recall

    def test_index_does_not_change_results(self, vs2_prepared):
        """The index changes which comparisons happen, not what is
        detected: precision/recall and the covered occurrences agree."""
        with_index = run_detector(
            vs2_prepared, DetectorConfig(num_hashes=192, use_index=True)
        )
        without_index = run_detector(
            vs2_prepared, DetectorConfig(num_hashes=192, use_index=False)
        )
        assert with_index.quality.precision == without_index.quality.precision
        assert with_index.quality.recall == without_index.quality.recall
        assert (
            with_index.quality.num_detected_occurrences
            == without_index.quality.num_detected_occurrences
        )

    def test_memory_decreases_with_threshold(self, vs2_prepared):
        """Figure 10(a): higher δ prunes more, fewer signatures remain."""
        low = run_detector(
            vs2_prepared, DetectorConfig(num_hashes=192, threshold=0.5)
        )
        high = run_detector(
            vs2_prepared, DetectorConfig(num_hashes=192, threshold=0.9)
        )
        assert high.stats.avg_signatures < low.stats.avg_signatures
