"""Scale/stress test (marked slow): a longer run end to end.

Exercises the full pipeline at several times the unit-test scale — a
one-hour stream with 24 monitored queries — and asserts throughput and
stability invariants: no errors, bounded memory (candidate list and
signature counts), real-time-capable processing, and quality in the
expected band.
"""

from __future__ import annotations

import pytest

from repro.config import DetectorConfig, ScaleProfile
from repro.evaluation.runner import PreparedWorkload, run_detector
from repro.video.synth import ClipSynthesizer
from repro.workloads.doctor import StreamDoctor
from repro.workloads.library import ClipLibrary


@pytest.mark.slow
def test_one_hour_stream_stability():
    profile = ScaleProfile(
        keyframes_per_second=2.0,
        stream_seconds=3600.0,
        num_queries=24,
        query_min_seconds=25.0,
        query_max_seconds=60.0,
    )
    library = ClipLibrary(profile, ClipSynthesizer(seed=77), seed=77)
    stream = StreamDoctor(profile, seed=77).build_vs2(library, noise_sigma=2.0)
    prepared = PreparedWorkload.prepare(stream, library)

    result = run_detector(prepared, DetectorConfig(num_hashes=400))
    stats = result.stats

    # Stability: the candidate list is bounded by the λL cap regardless
    # of stream length.
    assert stats.candidates_maintained.maximum <= 25  # ceil(2*120/10) + 1
    # Memory: resident signatures stay in the tens, not thousands.
    assert stats.signatures_maintained.maximum < 500
    # Throughput: processing much faster than real time (3600 s of
    # stream must take well under a minute of CPU here).
    assert result.cpu_seconds < 60.0
    stream_seconds = profile.stream_seconds
    speedup = stream_seconds / result.cpu_seconds
    print(f"\nthroughput: {speedup:.0f}x real time "
          f"({stats.windows_processed} windows in {result.cpu_seconds:.2f}s)")
    assert speedup > 60.0

    # Quality stays in the VS2 band at this scale.
    assert result.quality.precision >= 0.9
    assert result.quality.recall >= 0.5
