"""Units for the sketch-once front end and the shared-memory transport.

The golden-equivalence suite (``test_serve_equivalence.py``) proves the
sketch-once service end-to-end; this file pins the pieces it is built
from: :class:`StreamFrontend`'s window cut, absolute stream clock and
plane layout, the :class:`WindowBatch` shape invariants, the worker's
batch protocol, and the :class:`ShmBatchRing` slot lifecycle
(publish / read / release / growth / exhaustion).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DetectorConfig, Representation
from repro.core.query import QuerySet
from repro.errors import ServeError
from repro.minhash.family import MinHashFamily
from repro.minhash.windows import build_basic_windows
from repro.obs.registry import MetricsRegistry
from repro.serve import (
    ShmBatchReader,
    ShmBatchRing,
    StreamFrontend,
    shm_available,
)
from repro.serve.workers import ShardWorker, WorkerSpec
from repro.signature.bitsig import encode_planes

CELL_SPACE = 300
NUM_HASHES = 16
WINDOW_FRAMES = 5


def _family(seed=3):
    return MinHashFamily(num_hashes=NUM_HASHES, seed=seed)


def _config(**overrides):
    merged = dict(
        num_hashes=NUM_HASHES,
        threshold=0.3,
        window_seconds=2.5,  # w = 5 at 2 key frames / second
        representation=Representation.BIT,
        use_index=False,
    )
    merged.update(overrides)
    return DetectorConfig(**merged)


def _queries(family, num=4, seed=7, size=20):
    rng = np.random.default_rng(seed)
    cells = {qid: rng.integers(0, CELL_SPACE, size=size) for qid in range(num)}
    frames = {qid: size for qid in cells}
    return QuerySet.from_cell_ids(cells, frames, family)


def _frontend(config=None, family=None, queries=None):
    config = config or _config()
    family = family or _family()
    frontend = StreamFrontend(
        config=config,
        family=family,
        window_frames=WINDOW_FRAMES,
        registry=MetricsRegistry(),
    )
    qs = queries or _queries(family)
    frontend.set_queries({qid: qs.get(qid) for qid in qs.query_ids})
    return frontend, family, qs


# ----------------------------------------------------------------------
# StreamFrontend: window cut, stream clock, plane layout
# ----------------------------------------------------------------------


def test_build_cuts_windows_like_the_monitor():
    """Ragged chunks produce the same windows (same sketches, same
    absolute coordinates) as one offline pass over the concatenation."""
    frontend, family, _ = _frontend()
    rng = np.random.default_rng(0)
    chunks = [rng.integers(0, CELL_SPACE, size=n) for n in (7, 4, 9, 10)]
    batch_a = frontend.build(chunks[:2], base_seq=0)
    batch_b = frontend.build(chunks[2:], base_seq=2)

    # 7 -> 1 window (2 buffered); +4 -> 1 window (1 buffered);
    # +9 -> 2 windows (0 buffered); +10 -> 2 windows.
    assert batch_a.chunk_windows.tolist() == [1, 1]
    assert batch_b.chunk_windows.tolist() == [2, 2]
    assert frontend.pending_frames == 0

    stream = np.concatenate(chunks)
    reference = build_basic_windows(stream, WINDOW_FRAMES, family)
    produced = list(batch_a.sketch_values) + list(batch_b.sketch_values)
    assert len(reference) == len(produced) == 6
    for window, values in zip(reference, produced):
        assert np.array_equal(window.sketch.values, values)
    assert batch_a.indices.tolist() == [0, 1]
    assert batch_b.indices.tolist() == [2, 3, 4, 5]
    assert batch_b.starts.tolist() == [10, 15, 20, 25]
    assert set(batch_a.frames.tolist()) == {WINDOW_FRAMES}


def test_planes_match_per_window_encoder():
    """The broadcasted plane kernel equals per-window encode_planes for
    every window x sorted-qid row."""
    frontend, family, qs = _frontend()
    rng = np.random.default_rng(1)
    batch = frontend.build(
        [rng.integers(0, CELL_SPACE, size=15)], base_seq=0
    )
    assert batch.plane_qids == tuple(sorted(qs.query_ids))
    matrix = np.stack(
        [qs.get(qid).sketch.values for qid in batch.plane_qids]
    )
    for row in range(batch.num_windows):
        ge, lt = encode_planes(batch.sketch_values[row], matrix)
        assert np.array_equal(batch.ge[row], ge)
        assert np.array_equal(batch.lt[row], lt)


def test_no_planes_in_index_or_sketch_mode():
    for config in (
        _config(use_index=True),
        _config(representation=Representation.SKETCH, use_index=False),
    ):
        frontend, _, _ = _frontend(config=config)
        batch = frontend.build(
            [np.arange(WINDOW_FRAMES, dtype=np.int64)], base_seq=0
        )
        assert batch.plane_qids is None
        assert batch.ge is None and batch.lt is None


def test_empty_batch_keeps_shapes():
    """A chunk too short to complete a window yields a well-formed
    zero-window batch (the shm writer and workers rely on the shapes)."""
    frontend, _, qs = _frontend()
    batch = frontend.build([np.arange(3, dtype=np.int64)], base_seq=0)
    assert batch.num_windows == 0
    assert batch.chunk_windows.tolist() == [0]
    assert batch.sketch_values.shape == (0, NUM_HASHES)
    assert batch.ge.shape[:2] == (0, len(qs))
    assert frontend.pending_frames == 3


def test_flush_tail_and_terminal_state():
    frontend, family, qs = _frontend()
    frontend.build([np.arange(8, dtype=np.int64)], base_seq=0)
    tail = frontend.flush_tail()
    assert tail is not None
    assert tail.index == 1 and tail.start_frame == WINDOW_FRAMES
    assert tail.num_frames == 3
    expected = family.sketch(np.unique(np.arange(5, 8))).values
    assert np.array_equal(tail.sketch_values, expected)
    matrix = np.stack(
        [qs.get(qid).sketch.values for qid in tail.plane_qids]
    )
    ge, lt = encode_planes(tail.sketch_values, matrix)
    assert np.array_equal(tail.ge, ge) and np.array_equal(tail.lt, lt)
    assert frontend.flushed
    assert frontend.flush_tail() is None  # idempotent
    with pytest.raises(ServeError):
        frontend.build([np.arange(5)], base_seq=2)


def test_flush_on_boundary_returns_none():
    frontend, _, _ = _frontend()
    frontend.build([np.arange(WINDOW_FRAMES, dtype=np.int64)], base_seq=0)
    assert frontend.flush_tail() is None
    assert frontend.flushed


def test_state_restore_roundtrip():
    frontend, _, _ = _frontend()
    frontend.build([np.arange(13, dtype=np.int64)], base_seq=0)
    pending, flushed, windows, frames = frontend.state()
    assert pending.tolist() == [10, 11, 12]
    assert (flushed, windows, frames) == (False, 2, 10)

    other, _, _ = _frontend()
    other.restore(pending, flushed, windows, frames)
    batch = other.build([np.arange(2, dtype=np.int64)], base_seq=2)
    assert batch.indices.tolist() == [2]
    assert batch.starts.tolist() == [10]
    with pytest.raises(ServeError):
        other.restore(pending, False, -1, 0)


# ----------------------------------------------------------------------
# worker batch protocol
# ----------------------------------------------------------------------


def _worker(config, queries):
    cap = max(
        queries.max_windows_map(WINDOW_FRAMES, config.tempo_scale).values()
    )
    return ShardWorker(
        WorkerSpec(
            worker_id=0,
            config=config,
            queries=queries,
            keyframes_per_second=2.0,
            cap_hint=cap,
            timing_enabled=False,
            state=None,
            epoch=0,
        )
    )


def test_batch_reply_splits_per_chunk():
    """One batch covering several chunks replies one match list per
    chunk, equal to what per-chunk self-sketching yields."""
    config = _config()
    family = _family()
    rng = np.random.default_rng(5)
    qs = _queries(family)
    chunks = [rng.integers(0, CELL_SPACE, size=10) for _ in range(3)]
    chunks[1][2:7] = qs.get(1).cell_ids[:5]

    reference = _worker(config, _queries(family))
    per_chunk = []
    for seq, chunk in enumerate(chunks):
        reply = reference.handle(("chunk", seq, chunk))
        assert reply[0] == "matches"
        per_chunk.append(reply[3])

    frontend, _, _ = _frontend(config=config, family=family)
    batch = frontend.build(chunks, base_seq=0)
    worker = _worker(config, _queries(family))
    kind, _, base_seq, match_lists = worker.handle(("batch", batch))
    assert (kind, base_seq) == ("matches_batch", 0)
    assert len(match_lists) == 3
    assert match_lists == per_chunk


def test_batch_with_unknown_plane_qid_fails_loudly():
    config = _config()
    family = _family()
    frontend = StreamFrontend(
        config=config,
        family=family,
        window_frames=WINDOW_FRAMES,
        registry=MetricsRegistry(),
    )
    other = _queries(family, num=2, seed=99)
    frontend.set_queries({qid: other.get(qid) for qid in other.query_ids})
    batch = frontend.build(
        [np.arange(WINDOW_FRAMES, dtype=np.int64)], base_seq=0
    )
    shard = _queries(family, num=6)  # qids 0..5; layout only has 0..1
    worker = _worker(config, shard)
    reply = worker.handle(("batch", batch))
    assert reply[0] == "error"
    assert "missing query" in reply[2]


def test_extended_flush_carries_the_tail():
    """``("flush", TailWindow)`` processes the tail then flushes; the
    bare form stays the self-sketching reference."""
    config = _config()
    family = _family()
    rng = np.random.default_rng(9)
    stream = rng.integers(0, CELL_SPACE, size=8)

    reference = _worker(config, _queries(family))
    reference.handle(("chunk", 0, stream))
    ref_reply = reference.handle(("flush",))

    frontend, _, _ = _frontend(config=config, family=family)
    batch = frontend.build([stream], base_seq=0)
    worker = _worker(config, _queries(family))
    worker.handle(("batch", batch))
    reply = worker.handle(("flush", frontend.flush_tail()))
    assert reply[0] == ref_reply[0] == "flushed"
    assert [
        (m.qid, m.window_index, m.start_frame, m.end_frame, m.similarity)
        for m in reply[2]
    ] == [
        (m.qid, m.window_index, m.start_frame, m.end_frame, m.similarity)
        for m in ref_reply[2]
    ]


# ----------------------------------------------------------------------
# shared-memory ring
# ----------------------------------------------------------------------

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def _batch(num_chunks=2, seed=11):
    frontend, _, _ = _frontend()
    rng = np.random.default_rng(seed)
    return frontend.build(
        [rng.integers(0, CELL_SPACE, size=12) for _ in range(num_chunks)],
        base_seq=0,
    )


def _assert_batches_equal(a, b):
    assert a.base_seq == b.base_seq
    assert a.plane_qids == b.plane_qids
    for field in ("chunk_windows", "indices", "starts", "frames",
                  "sketch_values", "ge", "lt"):
        left, right = getattr(a, field), getattr(b, field)
        if left is None:
            assert right is None
        else:
            assert np.array_equal(left, right), field


@needs_shm
def test_ring_roundtrip_and_release():
    ring = ShmBatchRing(2)
    reader = ShmBatchReader()
    try:
        batch = _batch()
        descriptor = ring.publish(
            batch, readers=[0, 1], wait_for_slot=lambda: None
        )
        assert descriptor.total_bytes == batch.nbytes
        _assert_batches_equal(reader.read(descriptor), batch)
        ring.release(descriptor.slot, 0)
        ring.release(descriptor.slot, 1)
        with pytest.raises(ServeError):
            ring.release(descriptor.slot, 0)
    finally:
        reader.close()
        ring.close()


@needs_shm
def test_ring_exhaustion_calls_wait_hook():
    ring = ShmBatchRing(1)
    try:
        batch = _batch()
        first = ring.publish(batch, readers=[0], wait_for_slot=lambda: None)
        waits = []

        def drain():
            waits.append(first.slot)
            ring.release(first.slot, 0)

        second = ring.publish(batch, readers=[0], wait_for_slot=drain)
        assert waits == [first.slot]
        assert second.slot == first.slot
        ring.release(second.slot, 0)
    finally:
        ring.close()


@needs_shm
def test_slot_growth_changes_name_and_reader_reattaches():
    ring = ShmBatchRing(1)
    reader = ShmBatchReader()
    try:
        small = _batch(num_chunks=1)
        descriptor = ring.publish(small, readers=[], wait_for_slot=lambda: None)
        _assert_batches_equal(reader.read(descriptor), small)
        big = _batch(num_chunks=6, seed=13)
        assert big.nbytes > small.nbytes
        grown = ring.publish(big, readers=[], wait_for_slot=lambda: None)
        assert grown.slot == descriptor.slot
        assert grown.name != descriptor.name  # fresh segment, no aliasing
        _assert_batches_equal(reader.read(grown), big)
    finally:
        reader.close()
        ring.close()
