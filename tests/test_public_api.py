"""Contract tests on the public API surface.

A downstream user relies on ``repro``'s exports being importable,
documented and stable; these tests pin that contract.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.baselines",
    "repro.codec",
    "repro.core",
    "repro.evaluation",
    "repro.features",
    "repro.index",
    "repro.minhash",
    "repro.partition",
    "repro.signature",
    "repro.utils",
    "repro.video",
    "repro.workloads",
]


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing {name}"

    def test_all_sorted_and_unique(self):
        assert list(repro.__all__) == sorted(set(repro.__all__))

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_importable_and_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_every_module_has_docstring(self):
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a docstring"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                inspect.isclass(obj)
                and issubclass(obj, Exception)
                and obj is not errors.ReproError
                and obj.__module__ == "repro.errors"
            ):
                assert issubclass(obj, errors.ReproError), name

    def test_config_error_is_value_error(self):
        from repro.errors import ConfigError

        assert issubclass(ConfigError, ValueError)

    def test_library_raises_catchable_base(self):
        from repro.config import DetectorConfig

        with pytest.raises(repro.ReproError):
            DetectorConfig(num_hashes=-1)
