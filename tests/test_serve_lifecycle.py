"""Query-admission control plane: placement, epochs, purge, checkpoints.

Regression anchors for the online-maintenance bug sweep:

* a checkpoint taken *right after* a subscribe/unsubscribe (before the
  next basic window) must restore — pre-fix, the columnar engines'
  lazily synced column layout left a phantom query set in the snapshot
  and restore refused it;
* an unsubscribed qid must leave no trace in worker-state snapshots,
  and re-subscribing the same qid must start from zeroed state;
* lifecycle epochs must survive the checkpoint round-trip (format
  ``repro.ckpt/2``) while ``repro.ckpt/1`` archives stay loadable;
* the ingest scheduler must forward lifecycle ops to every session at
  chunk boundaries, and the ``repro serve`` churn flags must replay a
  scripted schedule exactly across a kill/resume.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.cli import main
from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import Query, QuerySet
from repro.errors import ServeError
from repro.ingest import CellIdSource, StreamScheduler, StreamSession
from repro.minhash.family import MinHashFamily
from repro.persistence import save_query_set
from repro.serve import (
    CHECKPOINT_FORMAT,
    CheckpointManager,
    DetectionService,
    QueryInfo,
    ShardPlanner,
    worker_state,
)

CELL_SPACE = 500
NUM_HASHES = 32
WINDOW_SECONDS = 2.5
KEYFRAMES_PER_SECOND = 2.0  # w = 5 key frames

ENGINE_MODES = [
    pytest.param(order, representation,
                 id=f"{order.value}-{representation.value}")
    for order in CombinationOrder
    for representation in Representation
]


def _match_key(match):
    return (
        match.qid,
        match.window_index,
        match.start_frame,
        match.end_frame,
        match.similarity,
    )


def _config(order=CombinationOrder.SEQUENTIAL,
            representation=Representation.BIT, vectorized=True,
            use_index=True, threshold=0.3):
    return DetectorConfig(
        num_hashes=NUM_HASHES,
        threshold=threshold,
        window_seconds=WINDOW_SECONDS,
        order=order,
        representation=representation,
        use_index=use_index,
        vectorized=vectorized,
    )


def _fixture(num_queries=4, seed=7, frames_each=25):
    rng = np.random.default_rng(seed)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=3)
    cells = {
        qid: rng.integers(0, CELL_SPACE, size=frames_each)
        for qid in range(num_queries)
    }
    frames = {qid: frames_each for qid in cells}
    return family, cells, frames, rng


def _query(family, qid, cell_ids, num_frames):
    distinct = np.unique(np.asarray(cell_ids, dtype=np.int64))
    return Query(qid=qid, cell_ids=distinct, num_frames=num_frames,
                 sketch=family.sketch(distinct))


# ----------------------------------------------------------------------
# bug sweep: snapshot-after-churn staleness
# ----------------------------------------------------------------------


@pytest.mark.parametrize("order,representation", ENGINE_MODES)
@pytest.mark.parametrize("churn", ["subscribe", "unsubscribe"])
def test_checkpoint_right_after_churn_restores(
    order, representation, churn, tmp_path
):
    """Snapshot between a lifecycle op and the next window must restore.

    Pre-fix the columnar engines only adopted the new column layout on
    the next processed window, so the snapshot recorded the *old* qid
    tuple and restore raised ``ServeError`` ("checkpointed for a
    different query set")."""
    family, cells, frames, rng = _fixture()
    config = _config(order, representation)
    chunks = [rng.integers(0, CELL_SPACE, size=35) for _ in range(3)]
    chunks[0][3:28] = cells[1]
    service = DetectionService(
        config, QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND, num_workers=2,
    )
    service.run(chunks[:2], flush=False)
    if churn == "subscribe":
        extra = rng.integers(0, CELL_SPACE, size=20)
        service.subscribe(_query(family, 77, extra, 20))
    else:
        service.unsubscribe(1)
    path = service.checkpoint(tmp_path)  # no window processed since
    service.close()

    resumed = DetectionService.restore(path, expected_config=config)
    resumed.run(chunks[2:], flush=True)
    if churn == "subscribe":
        assert 77 in [info.qid for info in resumed.list_queries()]
    else:
        assert 1 not in [info.qid for info in resumed.list_queries()]
    resumed.close()


@pytest.mark.parametrize("order,representation", ENGINE_MODES)
def test_worker_state_sees_subscribe_immediately(order, representation):
    """worker_state right after a detector-level subscribe includes the
    new qid (columnar engines must sync eagerly, not on next window)."""
    family, cells, frames, rng = _fixture()
    config = _config(order, representation)
    detector = StreamingDetector(
        config, QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND,
    )
    monitor = LiveMonitor(detector)
    monitor.push_cell_ids(rng.integers(0, CELL_SPACE, size=20))
    detector.subscribe(_query(family, 42, cells[0] + 1, 18))
    state = worker_state(detector, monitor)
    if "eng_qids" in state:  # columnar engines record the column layout
        assert 42 in state["eng_qids"].tolist()

    fresh = StreamingDetector(
        config,
        QuerySet.from_cell_ids(
            {**cells, 42: np.unique(cells[0] + 1)},
            {**frames, 42: 18},
            family,
        ),
        KEYFRAMES_PER_SECOND,
    )
    from repro.serve import restore_worker_state

    restore_worker_state(fresh, LiveMonitor(fresh), state)  # must not raise


# ----------------------------------------------------------------------
# bug sweep: full purge on unsubscribe, clean re-subscribe
# ----------------------------------------------------------------------


@pytest.mark.parametrize("order,representation", ENGINE_MODES)
@pytest.mark.parametrize("vectorized", [True, False],
                         ids=["columnar", "scalar"])
def test_unsubscribe_leaves_no_trace_in_snapshots(
    order, representation, vectorized
):
    """After unsubscribe, the removed qid appears nowhere in the worker
    state: not in the column layout, pair arrays, or query listing."""
    family, cells, frames, rng = _fixture()
    config = _config(order, representation, vectorized=vectorized)
    detector = StreamingDetector(
        config, QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND,
    )
    monitor = LiveMonitor(detector)
    chunk = rng.integers(0, CELL_SPACE, size=30)
    chunk[2:27] = cells[1]  # plant a copy so qid 1 accrues state
    monitor.push_cell_ids(chunk)
    detector.unsubscribe(1)
    state = worker_state(detector, monitor)
    for key in ("eng_qids", "eng_sig_qid", "eng_rel_qid"):
        if key in state:
            assert 1 not in state[key].tolist(), key
    assert 1 not in detector.queries.query_ids


@pytest.mark.parametrize("order,representation", ENGINE_MODES)
def test_resubscribe_same_qid_starts_clean(order, representation):
    """Unsubscribe + re-subscribe of the same qid behaves exactly like a
    detector that subscribed the fresh query at the same boundary."""
    family, cells, frames, rng = _fixture()
    config = _config(order, representation)
    chunks = [rng.integers(0, CELL_SPACE, size=30) for _ in range(4)]
    chunks[0][1:26] = cells[1]  # old life of qid 1
    chunks[2][3:28] = cells[1]  # would re-match the *old* sketch only
    replacement = _query(family, 1, cells[2] + 3, 22)

    def drive(initial, boundary_ops):
        detector = StreamingDetector(
            config, initial, KEYFRAMES_PER_SECOND
        )
        monitor = LiveMonitor(detector)
        matches = []
        for index, chunk in enumerate(chunks):
            matches.extend(monitor.push_cell_ids(chunk))
            for op, arg in boundary_ops.get(index, ()):  # at the barrier
                getattr(detector, op)(arg)
        matches.extend(monitor.flush())
        return matches

    churned = drive(
        QuerySet.from_cell_ids(cells, frames, family),
        {1: (("unsubscribe", 1), ("subscribe", replacement))},
    )
    reference = drive(
        QuerySet.from_cell_ids(
            {qid: cells[qid] for qid in cells if qid != 1},
            {qid: frames[qid] for qid in frames if qid != 1},
            family,
        ),
        {1: (("subscribe", replacement),)},
    )
    # qid 1's pre-churn matches are its old life, legitimately emitted
    # only by the churned run; windows ending after the boundary frame
    # (2 chunks × 30 frames) must treat the replacement as freshly born.
    boundary_frame = 2 * 30
    churned_after = [
        m for m in churned
        if m.qid == 1 and m.end_frame > boundary_frame
    ]
    reference_after = [
        m for m in reference
        if m.qid == 1 and m.end_frame > boundary_frame
    ]
    assert list(map(_match_key, churned_after)) == list(
        map(_match_key, reference_after)
    )


# ----------------------------------------------------------------------
# control plane: placement, epochs, listing, metrics
# ----------------------------------------------------------------------


def test_subscribe_places_on_least_loaded_shard():
    family, cells, frames, rng = _fixture(num_queries=4)
    # Uneven lengths => uneven caps under the "load" strategy.
    frames = {0: 60, 1: 10, 2: 10, 3: 10}
    queries = QuerySet.from_cell_ids(cells, frames, family)
    service = DetectionService(
        config := _config(), queries, KEYFRAMES_PER_SECOND,
        num_workers=2, strategy="load",
    )
    loads = service.shard_loads()
    lighter = loads.index(min(loads))
    target = service.subscribe(
        _query(family, 9, rng.integers(0, CELL_SPACE, size=15), 15)
    )
    assert target == lighter
    assert service.shard_of(9) == lighter
    # The online rule is the planner's greedy step.
    assert ShardPlanner(2, "load").place(loads) == lighter
    assert config is service.config
    service.close()


def test_epoch_barrier_counts_and_metrics():
    family, cells, frames, rng = _fixture()
    service = DetectionService(
        _config(), QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND, num_workers=2,
    )
    assert service.epoch == 0
    extra = _query(family, 50, rng.integers(0, CELL_SPACE, size=80), 80)
    service.subscribe(extra)  # longer query raises the global cap
    assert service.epoch == 1
    service.unsubscribe(50)  # cap shrinks back
    assert service.epoch == 2
    merged = service.metrics_snapshot()
    assert merged["serve"]["epoch"] == 2
    assert merged["counters"]["serve.queries.subscribed"] == 1
    assert merged["counters"]["serve.queries.unsubscribed"] == 1
    assert merged["counters"]["serve.queries.cap_rebroadcasts"] == 2
    assert merged["gauges"]["serve.queries.active"] == len(cells)
    assert merged["gauges"]["serve.queries.epoch"] == 2
    service.close()


def test_list_queries_reports_placement():
    family, cells, frames, _ = _fixture()
    service = DetectionService(
        _config(), QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND, num_workers=2,
    )
    listing = service.list_queries()
    assert [info.qid for info in listing] == sorted(cells)
    for info in listing:
        assert isinstance(info, QueryInfo)
        assert service.shard_of(info.qid) == info.shard
        assert info.cap_windows >= 1
        assert info.num_frames == frames[info.qid]
    service.close()


def test_subscribe_rejects_duplicates_and_foreign_family():
    family, cells, frames, rng = _fixture()
    service = DetectionService(
        _config(), QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND, num_workers=2,
    )
    with pytest.raises(ServeError, match="already subscribed"):
        service.subscribe(_query(family, 1, cells[1], 25))
    other_family = MinHashFamily(num_hashes=NUM_HASHES, seed=99)
    with pytest.raises(ServeError, match="different hash family"):
        service.subscribe(
            _query(other_family, 88, rng.integers(0, CELL_SPACE, 12), 12)
        )
    service.close()


# ----------------------------------------------------------------------
# checkpoint format: epochs round-trip, v1 compatibility
# ----------------------------------------------------------------------


def test_checkpoint_records_epochs(tmp_path):
    family, cells, frames, rng = _fixture()
    service = DetectionService(
        _config(), QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND, num_workers=2,
    )
    service.run([rng.integers(0, CELL_SPACE, size=30)], flush=False)
    service.subscribe(
        _query(family, 30, rng.integers(0, CELL_SPACE, size=12), 12)
    )
    path = service.checkpoint(tmp_path)
    service.close()

    manager = CheckpointManager(tmp_path)
    checkpoint = manager.load(path)
    assert checkpoint.epoch == 1
    assert checkpoint.worker_epochs() == [1, 1]
    with np.load(path, allow_pickle=True) as archive:
        assert str(archive["format"][0]) == CHECKPOINT_FORMAT == "repro.ckpt/4"

    resumed = DetectionService.restore(checkpoint)
    assert resumed.epoch == 1
    resumed.subscribe(
        _query(family, 31, rng.integers(0, CELL_SPACE, size=12), 12)
    )
    assert resumed.epoch == 2  # numbering continues, not restarts
    resumed.close()


def test_v1_checkpoint_still_loads(tmp_path):
    """A pre-churn ``repro.ckpt/1`` archive loads with epoch 0."""
    family, cells, frames, rng = _fixture()
    service = DetectionService(
        _config(), QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND, num_workers=2,
    )
    chunks = [rng.integers(0, CELL_SPACE, size=30) for _ in range(3)]
    service.run(chunks[:2], flush=False)
    path = service.checkpoint(tmp_path)

    # Downgrade the archive to the v1 layout: old format tag, no epoch
    # fields, no front-end state — a v1 writer kept the undigested
    # buffer in every worker's monitor, so move it back there.
    with np.load(path, allow_pickle=True) as archive:
        payload = {key: archive[key] for key in archive.files}
    fmt = np.empty(1, dtype=object)
    fmt[0] = "repro.ckpt/1"
    payload["format"] = fmt
    del payload["epoch"]
    for key in [k for k in payload if k.endswith("_epoch")]:
        del payload[key]
    buffered = payload.pop("frontend_pending")
    for key in [k for k in payload if k.startswith("frontend_")]:
        del payload[key]
    for key in [
        k for k in payload if re.fullmatch(r"w\d+_pending", k)
    ]:
        payload[key] = buffered
    v1_path = tmp_path / "ckpt-v1.npz"
    with open(v1_path, "wb") as handle:
        # v1 writers passed allow_pickle as a savez kwarg, embedding a
        # spurious "allow_pickle" member; keep it so the load-side
        # strip is exercised against a faithful old archive.
        np.savez_compressed(handle, **payload, allow_pickle=True)

    checkpoint = CheckpointManager(tmp_path).load(v1_path)
    assert checkpoint.epoch == 0
    assert checkpoint.worker_epochs() == [0, 0]
    resumed = DetectionService.restore(checkpoint)
    resumed.run(chunks[2:], flush=True)
    reference = DetectionService(
        _config(), QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND, num_workers=2,
    )
    reference.run(chunks)
    assert list(map(_match_key, resumed.matches)) == list(
        map(_match_key, reference.matches)
    )
    service.close()
    resumed.close()
    reference.close()


# ----------------------------------------------------------------------
# ingest: scheduler lifecycle forwarding
# ----------------------------------------------------------------------


@pytest.mark.parametrize("pool_size", [0, 2], ids=["inline", "pool"])
def test_scheduler_forwards_lifecycle_ops(pool_size):
    """Ops registered on the scheduler reach every session's detector
    exactly once, at a chunk boundary."""
    family, cells, frames, rng = _fixture(num_queries=3)
    config = _config()
    chunks_by_stream = [
        [rng.integers(0, CELL_SPACE, size=20) for _ in range(3)]
        for _ in range(2)
    ]
    pairs = []
    for stream_id, chunks in enumerate(chunks_by_stream):
        session = StreamSession(
            stream_id, config,
            QuerySet.from_cell_ids(cells, frames, family),
            KEYFRAMES_PER_SECOND,
        )
        pairs.append((CellIdSource(stream_id, chunks), session))
    scheduler = StreamScheduler(pairs, pool_size=pool_size)
    extra = _query(family, 71, rng.integers(0, CELL_SPACE, size=14), 14)
    scheduler.subscribe(extra)
    scheduler.unsubscribe(0)
    scheduler.run()
    for _, session in pairs:
        qids = set(session.detector.queries.query_ids)
        assert 71 in qids
        assert 0 not in qids
        assert session.registry.counter("ingest.queries_subscribed") == 1
        assert session.registry.counter("ingest.queries_unsubscribed") == 1
    counters = scheduler.registry.counters()
    lifecycle = {
        name: value for name, value in counters
        if ".lifecycle_ops." in name
    }
    assert set(lifecycle.values()) == {2}


# ----------------------------------------------------------------------
# CLI: scripted churn, kill/resume replay
# ----------------------------------------------------------------------


def _cli_base():
    # 4 queries on 2 workers → 2 per shard, so any single unsubscribe
    # never empties a shard regardless of planner placement.
    return ["serve", "--stream", "vs1", "--queries", "4",
            "--stream-seconds", "240", "--hashes", "32",
            "--chunk-seconds", "30", "--workers", "2",
            "--window-seconds", "2.0"]


def _cli_query_file(tmp_path):
    """A single-query file sketched under the serve command's family."""
    from repro.minhash.family import MinHashFamily as Family

    rng = np.random.default_rng(2026)
    family = Family(num_hashes=32, seed=0)  # matches _command_serve
    cells = np.unique(rng.integers(0, 4096, size=60))
    query = Query(qid=901, cell_ids=cells, num_frames=40,
                  sketch=family.sketch(cells))
    path = tmp_path / "extra-query.npz"
    save_query_set(QuerySet([query], family), path)
    return str(path)


@pytest.mark.slow
def test_cli_churn_schedule_and_resume(capsys, tmp_path):
    """--subscribe-at/--unsubscribe-at replay exactly across a kill."""
    base = _cli_base()
    query_file = _cli_query_file(tmp_path)
    churn = ["--unsubscribe-at", "1:0",
             "--subscribe-at", f"2:{query_file}",
             "--unsubscribe-at", "5:901"]

    assert main(base + churn) == 0
    full = capsys.readouterr().out
    assert "unsubscribed query 0" in full
    assert "subscribed query 901" in full
    final = full.splitlines()[-1]
    assert final.startswith("matches=")

    ckpt = ["--checkpoint-dir", str(tmp_path / "ckpt")]
    assert main(base + churn + ckpt + ["--stop-after", "3"]) == 0
    first_half = capsys.readouterr().out
    assert "subscribed query 901" in first_half  # churn before the kill
    assert main(base + churn + ckpt + ["--resume"]) == 0
    resumed = capsys.readouterr().out
    assert "skipping 2 lifecycle op(s)" in resumed
    assert "unsubscribed query 901" in resumed  # churn after the kill
    assert resumed.splitlines()[-1] == final


def test_cli_rejects_malformed_churn_flags(capsys):
    assert main(["serve", "--subscribe-at", "nonsense"]) == 2
    assert "WINDOW:QUERYFILE" in capsys.readouterr().err
    assert main(["serve", "--unsubscribe-at", "3:"]) == 2
    assert "WINDOW:QID" in capsys.readouterr().err
