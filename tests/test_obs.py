"""Tests for the observability layer (repro.obs) and its EngineStats view."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.monitor import EngineStats
from repro.core.query import QuerySet
from repro.minhash.family import MinHashFamily
from repro.obs.export import SCHEMA, logfmt_digest, snapshot, to_json
from repro.obs.registry import MetricsRegistry, PhaseTimer


class TestRegistry:
    def test_counters_start_at_zero(self):
        registry = MetricsRegistry()
        assert registry.counter("anything") == 0

    def test_inc_and_set(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counter("a") == 5
        registry.set_counter("a", 2)
        assert registry.counter("a") == 2

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        assert registry.gauge("g") == 0.0
        registry.set_gauge("g", 1.5)
        registry.set_gauge("g", 2.5)
        assert registry.gauge("g") == 2.5

    def test_distributions_accumulate(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("d", value)
        stats = registry.distribution("d")
        assert stats.count == 3
        assert stats.mean == 2.0

    def test_phase_timer_accumulates(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.phase("p"):
                pass
        timer = registry.timer("p")
        assert timer.calls == 3
        assert timer.seconds >= 0.0

    def test_phase_timer_rejects_reentry(self):
        timer = PhaseTimer("x")
        with timer:
            with pytest.raises(RuntimeError):
                timer.__enter__()

    def test_disabled_timing_records_nothing(self):
        registry = MetricsRegistry(timing_enabled=False)
        with registry.phase("p"):
            pass
        assert registry.timer("p").calls == 0
        # Counters stay live regardless.
        registry.inc("c")
        assert registry.counter("c") == 1

    def test_names_spans_all_kinds(self):
        registry = MetricsRegistry()
        registry.inc("a.counter")
        registry.set_gauge("b.gauge", 1.0)
        registry.observe("c.dist", 1.0)
        with registry.phase("d.timer"):
            pass
        assert registry.names() == ["a.counter", "b.gauge", "c.dist", "d.timer"]


class TestExport:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.inc("engine.windows_processed", 7)
        registry.set_gauge("runner.cpu_seconds", 0.25)
        registry.observe("engine.candidates_maintained", 4.0)
        with registry.phase("phase.probe"):
            pass
        return registry

    def test_snapshot_schema(self):
        shot = snapshot(self._populated())
        assert shot["schema"] == SCHEMA
        assert shot["counters"]["engine.windows_processed"] == 7
        assert shot["gauges"]["runner.cpu_seconds"] == 0.25
        dist = shot["distributions"]["engine.candidates_maintained"]
        assert dist["count"] == 1 and dist["mean"] == 4.0
        timer = shot["timers"]["phase.probe"]
        assert timer["calls"] == 1 and timer["seconds"] >= 0.0

    def test_snapshot_is_json_serialisable(self):
        registry = self._populated()
        registry.distribution("empty.dist")  # min/max are infinities
        parsed = json.loads(to_json(registry))
        assert parsed["distributions"]["empty.dist"]["min"] is None
        assert parsed["distributions"]["empty.dist"]["max"] is None

    def test_logfmt_digest_sorted_single_line(self):
        digest = logfmt_digest(self._populated())
        assert "\n" not in digest
        keys = [pair.split("=", 1)[0] for pair in digest.split()]
        assert keys == sorted(keys)
        assert "engine.windows_processed=7" in digest
        assert "phase.probe.seconds=" in digest
        assert "engine.candidates_maintained.mean=4.000000" in digest


class TestEngineStatsView:
    def test_independent_instances_do_not_share(self):
        first, second = EngineStats(), EngineStats()
        first.windows_processed += 5
        assert first.windows_processed == 5
        assert second.windows_processed == 0

    def test_counters_route_to_registry(self):
        registry = MetricsRegistry()
        stats = EngineStats(registry=registry)
        stats.sketch_combines += 3
        assert registry.counter("engine.sketch_combines") == 3
        registry.inc("engine.sketch_combines")
        assert stats.sketch_combines == 4

    def test_distributions_route_to_registry(self):
        registry = MetricsRegistry()
        stats = EngineStats(registry=registry)
        stats.signatures_maintained.extend([10.0, 20.0])
        assert stats.avg_signatures == 15.0
        assert (
            registry.distribution("engine.signatures_maintained").count == 2
        )

    def test_keyword_initialisation_still_supported(self):
        stats = EngineStats(windows_processed=4, matches_reported=2)
        assert stats.windows_processed == 4
        assert stats.matches_reported == 2

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            EngineStats(nonsense=1)
        stats = EngineStats()
        with pytest.raises(AttributeError):
            stats.nonsense  # noqa: B018 - attribute access is the assertion
        with pytest.raises(AttributeError):
            stats.nonsense = 1

    def test_all_metrics_predeclared_in_snapshot(self):
        stats = EngineStats()
        shot = snapshot(stats.registry)
        for metric in EngineStats.COUNTER_METRICS.values():
            assert shot["counters"][metric] == 0
        for metric in EngineStats.DISTRIBUTION_METRICS.values():
            assert shot["distributions"][metric]["count"] == 0

    def test_summary_unchanged(self):
        stats = EngineStats(windows_processed=2, matches_reported=1)
        summary = stats.summary()
        assert "windows=2" in summary
        assert "matches=1" in summary


class TestDetectorIntegration:
    def _detector(self, registry=None, window_seconds=10.0):
        family = MinHashFamily(num_hashes=64, seed=3)
        queries = QuerySet.from_cell_ids(
            {0: np.arange(500, 540)}, {0: 40}, family
        )
        config = DetectorConfig(
            num_hashes=64, threshold=0.7, window_seconds=window_seconds
        )
        return StreamingDetector(config, queries, 1.0, registry=registry)

    def test_detector_shares_registry_with_stats(self):
        registry = MetricsRegistry()
        detector = self._detector(registry=registry)
        rng = np.random.default_rng(0)
        detector.process_cell_ids(rng.integers(0, 400, size=40))
        assert detector.registry is registry
        assert registry.counter("engine.windows_processed") == 4
        assert detector.stats.windows_processed == 4

    def test_phase_timers_cover_pipeline(self):
        detector = self._detector()
        rng = np.random.default_rng(1)
        detector.process_cell_ids(rng.integers(0, 400, size=50))
        shot = snapshot(detector.registry)
        for phase in ("phase.sketch", "phase.probe", "phase.combine",
                      "phase.prune", "phase.match_emit"):
            assert shot["timers"][phase]["calls"] > 0, phase

    def test_timing_can_be_disabled(self):
        registry = MetricsRegistry(timing_enabled=False)
        detector = self._detector(registry=registry)
        rng = np.random.default_rng(2)
        detector.process_cell_ids(rng.integers(0, 400, size=50))
        assert snapshot(registry)["timers"] == {}
        # Counters unaffected by the timing switch.
        assert detector.stats.windows_processed == 5

    def test_runner_result_carries_metrics(self, vs1_prepared):
        from repro.evaluation.runner import run_detector

        result = run_detector(
            vs1_prepared, DetectorConfig(num_hashes=128)
        )
        assert result.metrics["schema"] == SCHEMA
        counters = result.metrics["counters"]
        assert (
            counters["engine.windows_processed"]
            == result.stats.windows_processed
        )
        assert result.metrics["gauges"]["runner.cpu_seconds"] > 0.0
        assert "phase.probe" in result.metrics["timers"]
