"""Tests for block motion estimation/compensation and M-frame encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.gop import decode_dc_coefficients, decode_video, encode_video
from repro.codec.motion import compensate, motion_search
from repro.errors import CodecError


def _textured_frame(rng, height=32, width=32):
    # Smooth, high-contrast texture so block matching is well-posed.
    base = rng.uniform(0, 255, size=(height // 4, width // 4))
    return np.kron(base, np.ones((4, 4)))


class TestMotionSearch:
    def test_recovers_pure_translation(self):
        rng = np.random.default_rng(0)
        reference = _textured_frame(rng)
        # Target is the reference shifted down-right by (2, 3): block
        # content at (r, c) comes from reference at (r - 2, c - 3), i.e.
        # the per-block vector should be (-2, -3).
        target = np.roll(np.roll(reference, 2, axis=0), 3, axis=1)
        vectors = motion_search(reference, target, block_size=8, search_range=4)
        interior = vectors[1:-1, 1:-1]
        assert (interior[:, :, 0] == -2).all()
        assert (interior[:, :, 1] == -3).all()

    def test_zero_motion_for_identical_frames(self):
        rng = np.random.default_rng(1)
        frame = _textured_frame(rng)
        vectors = motion_search(frame, frame, block_size=8, search_range=3)
        assert (vectors == 0).all()

    def test_prefers_small_vectors_on_ties(self):
        flat = np.full((16, 16), 100.0)
        vectors = motion_search(flat, flat, block_size=8, search_range=2)
        assert (vectors == 0).all()

    def test_rejects_shape_mismatch(self):
        with pytest.raises(CodecError):
            motion_search(np.zeros((16, 16)), np.zeros((16, 24)))

    def test_rejects_unaligned_frames(self):
        with pytest.raises(CodecError):
            motion_search(np.zeros((10, 16)), np.zeros((10, 16)))

    def test_rejects_negative_range(self):
        with pytest.raises(CodecError):
            motion_search(np.zeros((16, 16)), np.zeros((16, 16)), search_range=-1)


class TestCompensate:
    def test_inverse_of_translation(self):
        rng = np.random.default_rng(2)
        reference = _textured_frame(rng)
        target = np.roll(np.roll(reference, 2, axis=0), 3, axis=1)
        vectors = motion_search(reference, target, block_size=8, search_range=4)
        prediction = compensate(reference, vectors, block_size=8)
        # Interior blocks must predict perfectly (edges are clipped).
        assert np.allclose(prediction[8:-8, 8:-8], target[8:-8, 8:-8])

    def test_zero_vectors_identity(self):
        rng = np.random.default_rng(3)
        reference = _textured_frame(rng)
        vectors = np.zeros((4, 4, 2), dtype=np.int64)
        assert np.allclose(compensate(reference, vectors, 8), reference)

    def test_rejects_bad_grid(self):
        with pytest.raises(CodecError):
            compensate(np.zeros((16, 16)), np.zeros((3, 3, 2), dtype=np.int64), 8)


class TestMotionCompensatedCodec:
    def _panning_clip(self, num_frames=6, size=32, seed=4):
        rng = np.random.default_rng(seed)
        wide = np.kron(rng.uniform(20, 235, size=(size // 4, size)), np.ones((4, 2)))
        frames = np.stack(
            [wide[:, 2 * t : 2 * t + size] for t in range(num_frames)]
        )
        return np.clip(frames, 0, 255)

    def test_roundtrip(self):
        frames = self._panning_clip()
        encoded = encode_video(
            frames, fps=25.0, quality=85, gop_size=6, use_motion=True
        )
        decoded = decode_video(encoded)
        assert np.abs(decoded - frames).mean() < 6.0

    def test_motion_beats_plain_difference_on_panning(self):
        """Panning content: motion-compensated residuals are smaller, so
        the stream shrinks relative to plain P-frame differencing."""
        frames = self._panning_clip(num_frames=8)
        plain = encode_video(frames, fps=25.0, quality=85, gop_size=8)
        compensated = encode_video(
            frames, fps=25.0, quality=85, gop_size=8, use_motion=True
        )
        assert compensated.size_bytes < plain.size_bytes

    def test_partial_decoder_skips_m_frames(self):
        frames = self._panning_clip(num_frames=7)
        encoded = encode_video(
            frames, fps=25.0, quality=85, gop_size=3, use_motion=True
        )
        indices = [idx for idx, _dc in decode_dc_coefficients(encoded)]
        assert indices == [0, 3, 6]

    def test_unaligned_frame_size(self):
        rng = np.random.default_rng(5)
        frames = np.clip(
            np.cumsum(rng.normal(0, 1, size=(5, 18, 27)), axis=0) + 128, 0, 255
        )
        encoded = encode_video(
            frames, fps=25.0, quality=85, gop_size=5, use_motion=True
        )
        decoded = decode_video(encoded)
        assert decoded.shape == frames.shape
        assert np.abs(decoded - frames).mean() < 8.0

    def test_fingerprints_agree_between_p_and_m_encodes(self):
        """The feature pipeline is oblivious to the prediction mode: both
        encodes expose the same I-frame DC data."""
        from repro.features.pipeline import FingerprintExtractor

        frames = self._panning_clip(num_frames=9)
        extractor = FingerprintExtractor()
        plain = encode_video(frames, fps=25.0, quality=90, gop_size=3)
        compensated = encode_video(
            frames, fps=25.0, quality=90, gop_size=3, use_motion=True
        )
        assert np.array_equal(
            extractor.cell_ids_from_encoded(plain),
            extractor.cell_ids_from_encoded(compensated),
        )
