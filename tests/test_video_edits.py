"""Tests for the editing attacks and the reordering attack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VideoError
from repro.features.dc_extract import block_means_from_frames
from repro.features.normalize import normalize_features
from repro.video.clip import VideoClip
from repro.video.edits import (
    EditPipeline,
    add_noise,
    adjust_brightness,
    adjust_contrast,
    change_resolution,
    color_shift,
    recompress,
    resample_fps,
)
from repro.video.formats import PAL
from repro.video.reorder import reorder_segments, split_into_segments
from repro.video.synth import ClipSynthesizer


@pytest.fixture(scope="module")
def clip() -> VideoClip:
    return ClipSynthesizer(seed=21).generate_clip(20.0, label="edit-me", fps=2.0)


class TestBrightness:
    def test_scales_luminance(self, clip):
        bright = adjust_brightness(clip, 1.2)
        mask = clip.frames * 1.2 <= 255.0
        assert np.allclose(bright.frames[mask], clip.frames[mask] * 1.2)

    def test_clips_at_255(self, clip):
        bright = adjust_brightness(clip, 3.0)
        assert bright.frames.max() <= 255.0

    def test_rejects_nonpositive(self, clip):
        with pytest.raises(VideoError):
            adjust_brightness(clip, 0.0)

    def test_does_not_mutate_input(self, clip):
        before = clip.frames.copy()
        adjust_brightness(clip, 1.5)
        assert np.array_equal(clip.frames, before)

    def test_normalized_features_invariant_without_clipping(self, clip):
        # Eq. (1) cancels a pure gain as long as no pixel saturates.
        dim = adjust_brightness(clip, 0.7)
        original = normalize_features(block_means_from_frames(clip.frames))
        dimmed = normalize_features(block_means_from_frames(dim.frames))
        assert np.allclose(original, dimmed, atol=1e-9)


class TestContrast:
    def test_stretches_around_pivot(self, clip):
        stretched = adjust_contrast(clip, 1.1)
        assert stretched.frames.std() > clip.frames.std()

    def test_rejects_nonpositive(self, clip):
        with pytest.raises(VideoError):
            adjust_contrast(clip, -1.0)


class TestColorShift:
    def test_deterministic(self, clip):
        a = color_shift(clip, 0.4, seed=9)
        b = color_shift(clip, 0.4, seed=9)
        assert np.array_equal(a.frames, b.frames)

    def test_seed_matters(self, clip):
        a = color_shift(clip, 0.4, seed=9)
        b = color_shift(clip, 0.4, seed=10)
        assert not np.array_equal(a.frames, b.frames)

    def test_zero_strength_is_identity(self, clip):
        assert np.allclose(color_shift(clip, 0.0, seed=9).frames, clip.frames)

    def test_luma_leakage_is_fractional(self, clip):
        # A 50 % color change must move luminance by far less than 50 %.
        shifted = color_shift(clip, 0.5, seed=9)
        relative = np.abs(shifted.frames - clip.frames) / np.maximum(clip.frames, 1.0)
        assert relative.max() < 0.10

    def test_rejects_out_of_range(self, clip):
        with pytest.raises(VideoError):
            color_shift(clip, 1.5)


class TestNoise:
    def test_zero_sigma_is_identity(self, clip):
        assert np.allclose(add_noise(clip, 0.0).frames, clip.frames)

    def test_noise_magnitude(self, clip):
        noisy = add_noise(clip, 5.0, seed=1)
        diff = noisy.frames - clip.frames
        assert 3.0 < diff.std() < 7.0

    def test_rejects_negative(self, clip):
        with pytest.raises(VideoError):
            add_noise(clip, -1.0)


class TestResolution:
    def test_target_shape(self, clip):
        resized = change_resolution(clip, PAL.height, PAL.width)
        assert (resized.height, resized.width) == (PAL.height, PAL.width)
        assert resized.num_frames == clip.num_frames

    def test_block_means_preserved(self, clip):
        # Fractional region averaging makes the fingerprint nearly
        # resolution-invariant.
        resized = change_resolution(clip, PAL.height, PAL.width)
        original = block_means_from_frames(clip.frames)
        scaled = block_means_from_frames(resized.frames)
        assert np.abs(original - scaled).mean() < 1.0


class TestResampleFps:
    def test_preserves_duration(self, clip):
        resampled = resample_fps(clip, clip.fps * 25.0 / 29.97)
        assert resampled.duration == pytest.approx(clip.duration, rel=0.05)

    def test_frame_count_scales(self, clip):
        resampled = resample_fps(clip, clip.fps / 2)
        assert resampled.num_frames == pytest.approx(clip.num_frames / 2, abs=1)

    def test_upsampling_repeats_frames(self, clip):
        resampled = resample_fps(clip, clip.fps * 2)
        assert resampled.num_frames == pytest.approx(clip.num_frames * 2, abs=1)

    def test_rejects_nonpositive(self, clip):
        with pytest.raises(VideoError):
            resample_fps(clip, 0.0)


class TestRecompress:
    def test_roundtrip_close_at_high_quality(self, clip):
        short = clip.subclip(0, 4)
        out = recompress(short, quality=90)
        assert np.abs(out.frames - short.frames).mean() < 4.0

    def test_low_quality_larger_error(self, clip):
        short = clip.subclip(0, 4)
        high = np.abs(recompress(short, 90).frames - short.frames).mean()
        low = np.abs(recompress(short, 15).frames - short.frames).mean()
        assert low > high


class TestEditPipeline:
    def test_deterministic_per_label(self, clip):
        pipeline = EditPipeline(seed=5)
        assert np.array_equal(pipeline.apply(clip).frames, pipeline.apply(clip).frames)

    def test_output_format(self, clip):
        edited = EditPipeline(seed=5).apply(clip)
        assert (edited.height, edited.width) == (PAL.height, PAL.width)
        assert edited.fps == pytest.approx(PAL.fps)

    def test_different_clips_get_different_attacks(self):
        synth = ClipSynthesizer(seed=21)
        a = synth.generate_clip(10.0, label="a", fps=2.0)
        b = a.with_label("b")
        pipeline = EditPipeline(seed=5)
        # Same pixels, different labels -> different attack draws.
        assert not np.array_equal(
            pipeline.apply(a).frames, pipeline.apply(b).frames
        )

    def test_vs2_label_suffix(self, clip):
        assert EditPipeline(seed=5).apply(clip).label.endswith("+vs2")

    def test_chroma_domain_variant(self, clip):
        """The RGB-domain color attack yields a clip whose fingerprints
        stay close to the grayscale model's — validating that the model
        is a reasonable shortcut."""
        from repro.baselines.membership import jaccard_similarity
        from repro.features.pipeline import FingerprintExtractor

        modelled = EditPipeline(seed=5).apply(clip)
        physical = EditPipeline(seed=5, chroma_domain=True).apply(clip)
        assert (physical.height, physical.width) == (
            modelled.height,
            modelled.width,
        )
        extractor = FingerprintExtractor()
        original_ids = extractor.cell_ids_from_clip(clip)
        # The physically-attacked copy must remain detectable content.
        similarity = jaccard_similarity(
            original_ids, extractor.cell_ids_from_clip(physical)
        )
        assert similarity > 0.5

    def test_chroma_domain_deterministic(self, clip):
        a = EditPipeline(seed=5, chroma_domain=True).apply(clip)
        b = EditPipeline(seed=5, chroma_domain=True).apply(clip)
        assert np.array_equal(a.frames, b.frames)


class TestCompose:
    def test_applies_left_to_right(self, clip):
        from repro.video.edits import compose

        pipeline = compose(
            lambda c: adjust_brightness(c, 0.5),
            lambda c: adjust_brightness(c, 2.0),
        )
        out = pipeline(clip)
        # 0.5 then 2.0 cancels where no clipping occurred.
        mask = clip.frames * 0.5 * 2.0 <= 255.0
        assert np.allclose(out.frames[mask], clip.frames[mask])

    def test_empty_compose_is_identity(self, clip):
        from repro.video.edits import compose

        assert compose()(clip) is clip


class TestSegments:
    def test_split_counts(self, clip):
        segments = split_into_segments(clip, 4)
        assert len(segments) == 4
        assert sum(s.num_frames for s in segments) == clip.num_frames

    def test_split_near_equal(self, clip):
        segments = split_into_segments(clip, 4)
        sizes = [s.num_frames for s in segments]
        assert max(sizes) - min(sizes) <= 1

    def test_split_rejects_too_many(self, clip):
        with pytest.raises(VideoError):
            split_into_segments(clip, clip.num_frames + 1)

    def test_split_rejects_nonpositive(self, clip):
        with pytest.raises(VideoError):
            split_into_segments(clip, 0)


class TestReorder:
    def test_preserves_frame_multiset(self, clip):
        reordered, _perm = reorder_segments(clip, 5, seed=3)
        assert reordered.num_frames == clip.num_frames
        assert np.allclose(
            np.sort(reordered.frames.sum(axis=(1, 2))),
            np.sort(clip.frames.sum(axis=(1, 2))),
        )

    def test_changes_order(self, clip):
        reordered, permutation = reorder_segments(clip, 5, seed=3)
        assert permutation != tuple(range(5))
        assert not np.array_equal(reordered.frames, clip.frames)

    def test_permutation_applies(self, clip):
        reordered, permutation = reorder_segments(clip, 4, seed=3)
        segments = split_into_segments(clip, 4)
        expected = np.concatenate(
            [segments[p].frames for p in permutation], axis=0
        )
        assert np.array_equal(reordered.frames, expected)

    def test_single_segment_identity(self, clip):
        reordered, permutation = reorder_segments(clip, 1, seed=3)
        assert permutation == (0,)
        assert np.array_equal(reordered.frames, clip.frames)

    def test_deterministic(self, clip):
        a, pa = reorder_segments(clip, 5, seed=3)
        b, pb = reorder_segments(clip, 5, seed=3)
        assert pa == pb
        assert np.array_equal(a.frames, b.frames)
