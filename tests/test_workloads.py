"""Tests for the clip library, stream doctoring and ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ScaleProfile
from repro.errors import WorkloadError
from repro.video.synth import ClipSynthesizer
from repro.workloads.doctor import StreamDoctor
from repro.workloads.groundtruth import GroundTruth, Occurrence
from repro.workloads.library import ClipLibrary


class TestOccurrence:
    def test_properties(self):
        occ = Occurrence(qid=3, begin_frame=10, end_frame=50)
        assert occ.num_frames == 40

    def test_rejects_empty_span(self):
        with pytest.raises(WorkloadError):
            Occurrence(qid=0, begin_frame=10, end_frame=10)

    def test_rejects_negative_begin(self):
        with pytest.raises(WorkloadError):
            Occurrence(qid=0, begin_frame=-1, end_frame=5)


class TestGroundTruth:
    def test_sorted_iteration(self):
        occurrences = [
            Occurrence(1, 50, 60),
            Occurrence(0, 10, 20),
        ]
        gt = GroundTruth(occurrences, stream_frames=100)
        assert [o.begin_frame for o in gt] == [10, 50]
        assert len(gt) == 2

    def test_by_query(self):
        occurrences = [Occurrence(1, 50, 60), Occurrence(1, 70, 80)]
        gt = GroundTruth(occurrences, stream_frames=100)
        assert gt.query_ids == [1]
        assert len(gt.occurrences_of(1)) == 2
        assert gt.occurrences_of(9) == []

    def test_rejects_out_of_stream(self):
        with pytest.raises(WorkloadError):
            GroundTruth([Occurrence(0, 90, 120)], stream_frames=100)

    def test_rejects_bad_stream_frames(self):
        with pytest.raises(WorkloadError):
            GroundTruth([], stream_frames=0)


class TestClipLibrary:
    def test_count_and_ids(self, small_profile, synthesizer):
        library = ClipLibrary(small_profile, synthesizer, seed=1)
        assert len(library) == small_profile.num_queries
        assert library.query_ids == list(range(small_profile.num_queries))

    def test_durations_in_range(self, small_profile, synthesizer):
        library = ClipLibrary(small_profile, synthesizer, seed=1)
        for _qid, clip in library:
            assert (
                small_profile.query_min_seconds - 1
                <= clip.duration
                <= small_profile.query_max_seconds + 1
            )

    def test_deterministic(self, small_profile, synthesizer):
        a = ClipLibrary(small_profile, synthesizer, seed=1)
        b = ClipLibrary(small_profile, synthesizer, seed=1)
        for qid in a.query_ids:
            assert np.array_equal(a.clip(qid).frames, b.clip(qid).frames)

    def test_clips_distinct(self, small_library):
        ids = small_library.query_ids
        assert not np.array_equal(
            small_library.clip(ids[0]).frames[0],
            small_library.clip(ids[1]).frames[0],
        )

    def test_unknown_clip_rejected(self, small_library):
        with pytest.raises(WorkloadError):
            small_library.clip(999)

    def test_subset(self, small_library):
        subset = small_library.subset(3)
        assert len(subset) == 3
        assert subset.query_ids == small_library.query_ids[:3]
        assert subset.clip(0) is small_library.clip(0)

    def test_subset_bounds(self, small_library):
        with pytest.raises(WorkloadError):
            small_library.subset(0)
        with pytest.raises(WorkloadError):
            small_library.subset(len(small_library) + 1)

    def test_generate_convenience(self):
        library = ClipLibrary.generate(ScaleProfile.smoke_scale(), seed=2)
        assert len(library) == ScaleProfile.smoke_scale().num_queries


class TestStreamDoctorVs1:
    def test_every_clip_inserted_once(self, vs1_stream, small_library):
        gt = vs1_stream.ground_truth
        assert sorted(o.qid for o in gt) == small_library.query_ids

    def test_occurrences_disjoint(self, vs1_stream):
        spans = sorted(
            (o.begin_frame, o.end_frame) for o in vs1_stream.ground_truth
        )
        for (b1, e1), (b2, e2) in zip(spans, spans[1:]):
            assert e1 <= b2

    def test_stream_length_matches_profile(self, vs1_stream, small_profile):
        expected = small_profile.seconds_to_keyframes(small_profile.stream_seconds)
        assert vs1_stream.clip.num_frames == expected

    def test_inserted_content_verbatim(self, vs1_stream, small_library):
        for occurrence in vs1_stream.ground_truth:
            clip = small_library.clip(occurrence.qid)
            segment = vs1_stream.clip.frames[
                occurrence.begin_frame : occurrence.end_frame
            ]
            assert np.allclose(segment, clip.frames)

    def test_deterministic(self, small_profile, small_library):
        a = StreamDoctor(small_profile, seed=99).build_vs1(small_library)
        b = StreamDoctor(small_profile, seed=99).build_vs1(small_library)
        assert np.array_equal(a.clip.frames, b.clip.frames)
        assert [(o.qid, o.begin_frame) for o in a.ground_truth] == [
            (o.qid, o.begin_frame) for o in b.ground_truth
        ]

    def test_seed_changes_layout(self, small_profile, small_library):
        a = StreamDoctor(small_profile, seed=1).build_vs1(small_library)
        b = StreamDoctor(small_profile, seed=2).build_vs1(small_library)
        assert [o.begin_frame for o in a.ground_truth] != [
            o.begin_frame for o in b.ground_truth
        ]


class TestStreamDoctorVs2:
    def test_every_clip_inserted_once(self, vs2_stream, small_library):
        assert sorted(o.qid for o in vs2_stream.ground_truth) == (
            small_library.query_ids
        )

    def test_inserts_are_edited(self, vs2_stream, small_library):
        """VS2 content must differ from the originals (attacks applied)."""
        for occurrence in vs2_stream.ground_truth:
            clip = small_library.clip(occurrence.qid)
            segment = vs2_stream.clip.frames[
                occurrence.begin_frame : occurrence.end_frame
            ]
            # Re-timing changes the frame count (PAL cadence).
            assert segment.shape[0] != clip.num_frames or not np.allclose(
                segment[:, : clip.height, : clip.width], clip.frames
            )

    def test_retiming_shortens_copies(self, vs2_stream, small_library):
        ratio_sum = 0.0
        for occurrence in vs2_stream.ground_truth:
            original = small_library.clip(occurrence.qid).num_frames
            ratio_sum += occurrence.num_frames / original
        mean_ratio = ratio_sum / len(vs2_stream.ground_truth)
        assert mean_ratio == pytest.approx(25.0 / 29.97, abs=0.05)

    def test_pal_geometry(self, vs2_stream):
        from repro.video.formats import PAL

        assert (vs2_stream.clip.height, vs2_stream.clip.width) == (
            PAL.height,
            PAL.width,
        )

    def test_rejects_bad_reorder_range(self, small_profile, small_library):
        doctor = StreamDoctor(small_profile, seed=1)
        with pytest.raises(WorkloadError):
            doctor.build_vs2(
                small_library, reorder_min_segments=5, reorder_max_segments=2
            )

    def test_rejects_bad_reorder_mode(self, small_profile, small_library):
        doctor = StreamDoctor(small_profile, seed=1)
        with pytest.raises(WorkloadError):
            doctor.build_vs2(small_library, reorder_mode="random")

    def test_shot_aligned_reorder_mode(self, small_profile, small_library):
        """VS2 with shot-aligned cuts still detects at high quality —
        the set measure does not care where the cuts fall."""
        from repro.config import DetectorConfig
        from repro.evaluation.runner import PreparedWorkload, run_detector

        doctor = StreamDoctor(small_profile, seed=1)
        stream = doctor.build_vs2(
            small_library, noise_sigma=2.0, reorder_mode="shots"
        )
        assert sorted(o.qid for o in stream.ground_truth) == (
            small_library.query_ids
        )
        prepared = PreparedWorkload.prepare(stream, small_library)
        result = run_detector(prepared, DetectorConfig(num_hashes=192))
        assert result.quality.precision >= 0.9
        assert result.quality.recall >= 0.5


class TestCapacity:
    def test_overfull_stream_rejected(self, synthesizer):
        profile = ScaleProfile(
            stream_seconds=30.0,
            num_queries=4,
            query_min_seconds=10.0,
            query_max_seconds=12.0,
        )
        library = ClipLibrary(profile, synthesizer, seed=1)
        with pytest.raises(WorkloadError, match="increase stream_seconds"):
            StreamDoctor(profile, seed=1).build_vs1(library)
