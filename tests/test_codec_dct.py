"""Unit tests for the from-scratch DCT, quantiser, zig-zag and tiling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.blocks import assemble_blocks, pad_to_blocks, split_into_blocks
from repro.codec.dct import dct2, dct_matrix, idct2
from repro.codec.quantize import (
    dequantize_block,
    quantization_matrix,
    quantize_block,
)
from repro.codec.zigzag import zigzag_indices, zigzag_order, zigzag_restore
from repro.errors import CodecError


class TestDctMatrix:
    def test_orthogonality(self):
        m = dct_matrix(8)
        assert np.allclose(m @ m.T, np.eye(8), atol=1e-12)

    def test_first_row_constant(self):
        m = dct_matrix(8)
        assert np.allclose(m[0], np.full(8, 1.0 / np.sqrt(8)))

    def test_rejects_nonpositive(self):
        with pytest.raises(CodecError):
            dct_matrix(0)

    def test_cached_instance(self):
        assert dct_matrix(8) is dct_matrix(8)


class TestDct2:
    def test_roundtrip_exact(self):
        rng = np.random.default_rng(0)
        block = rng.uniform(-128, 127, size=(8, 8))
        assert np.allclose(idct2(dct2(block)), block, atol=1e-9)

    def test_dc_equals_scaled_mean(self):
        block = np.full((8, 8), 10.0)
        coefficients = dct2(block)
        # Orthonormal DCT: DC = N * mean for an N x N block.
        assert coefficients[0, 0] == pytest.approx(8 * 10.0)
        assert np.allclose(coefficients.flat[1:], 0.0, atol=1e-9)

    def test_parseval_energy_preserved(self):
        rng = np.random.default_rng(1)
        block = rng.normal(size=(8, 8))
        assert np.sum(block**2) == pytest.approx(np.sum(dct2(block) ** 2))

    def test_non_square_blocks(self):
        rng = np.random.default_rng(2)
        block = rng.normal(size=(4, 6))
        assert np.allclose(idct2(dct2(block)), block, atol=1e-9)

    def test_linear(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 8))
        assert np.allclose(dct2(a + 2 * b), dct2(a) + 2 * dct2(b))

    def test_rejects_non_2d(self):
        with pytest.raises(CodecError):
            dct2(np.zeros(8))
        with pytest.raises(CodecError):
            idct2(np.zeros((2, 2, 2)))

    @settings(max_examples=25)
    @given(
        arrays(
            np.float64,
            (8, 8),
            elements=st.floats(-128, 127, allow_nan=False),
        )
    )
    def test_roundtrip_property(self, block):
        assert np.allclose(idct2(dct2(block)), block, atol=1e-6)

    def test_matches_scipy_reference(self):
        """Cross-validate the from-scratch transform against scipy's
        orthonormal DCT-II — an independent implementation."""
        scipy_fft = pytest.importorskip("scipy.fft")
        rng = np.random.default_rng(9)
        for shape in ((8, 8), (4, 8), (16, 16)):
            block = rng.uniform(-128, 127, size=shape)
            reference = scipy_fft.dctn(block, type=2, norm="ortho")
            assert np.allclose(dct2(block), reference, atol=1e-10)
            assert np.allclose(
                idct2(reference),
                scipy_fft.idctn(reference, type=2, norm="ortho"),
                atol=1e-10,
            )


class TestQuantization:
    def test_quality_50_is_base_table(self):
        table = quantization_matrix(50)
        assert table[0, 0] == 16.0
        assert table[7, 7] == 99.0

    def test_higher_quality_finer(self):
        coarse = quantization_matrix(20)
        fine = quantization_matrix(90)
        assert (fine <= coarse).all()
        assert fine.sum() < coarse.sum()

    def test_quality_100_near_lossless(self):
        assert (quantization_matrix(100) == 1.0).all()

    def test_bounds_rejected(self):
        with pytest.raises(CodecError):
            quantization_matrix(0)
        with pytest.raises(CodecError):
            quantization_matrix(101)

    def test_non_8_block_size(self):
        table = quantization_matrix(50, block_size=4)
        assert table.shape == (4, 4)
        assert (table >= 1.0).all()

    def test_quantize_dequantize_bounded_error(self):
        rng = np.random.default_rng(4)
        coefficients = rng.uniform(-500, 500, size=(8, 8))
        table = quantization_matrix(75)
        recovered = dequantize_block(quantize_block(coefficients, table), table)
        assert (np.abs(recovered - coefficients) <= table / 2 + 1e-9).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CodecError):
            quantize_block(np.zeros((4, 4)), quantization_matrix(50))
        with pytest.raises(CodecError):
            dequantize_block(np.zeros((4, 4), dtype=np.int32), quantization_matrix(50))


class TestZigzag:
    def test_indices_8x8_start_and_end(self):
        order = zigzag_indices(8)
        assert order[0] == (0, 0)
        assert order[1] == (0, 1)
        assert order[2] == (1, 0)
        assert order[-1] == (7, 7)

    def test_indices_cover_all_cells(self):
        order = zigzag_indices(5)
        assert len(set(order)) == 25

    def test_adjacent_cells_touch(self):
        order = zigzag_indices(6)
        for (r1, c1), (r2, c2) in zip(order, order[1:]):
            assert abs(r1 - r2) <= 1 and abs(c1 - c2) <= 1

    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        block = rng.integers(-10, 10, size=(8, 8))
        assert np.array_equal(zigzag_restore(zigzag_order(block), 8), block)

    def test_dc_is_first(self):
        block = np.zeros((8, 8))
        block[0, 0] = 42.0
        assert zigzag_order(block)[0] == 42.0

    def test_rejects_non_square(self):
        with pytest.raises(CodecError):
            zigzag_order(np.zeros((4, 8)))

    def test_restore_rejects_bad_length(self):
        with pytest.raises(CodecError):
            zigzag_restore(np.zeros(63), 8)


class TestBlocks:
    def test_pad_noop_when_aligned(self):
        frame = np.zeros((16, 24))
        assert pad_to_blocks(frame, 8) is frame

    def test_pad_extends_with_edge(self):
        frame = np.arange(6, dtype=float).reshape(2, 3)
        padded = pad_to_blocks(frame, 4)
        assert padded.shape == (4, 4)
        assert padded[3, 3] == frame[1, 2]

    def test_split_shape(self):
        frame = np.zeros((16, 24))
        blocks = split_into_blocks(frame, 8)
        assert blocks.shape == (2, 3, 8, 8)

    def test_split_content(self):
        frame = np.arange(64, dtype=float).reshape(8, 8)
        blocks = split_into_blocks(frame, 4)
        assert np.array_equal(blocks[0, 0], frame[:4, :4])
        assert np.array_equal(blocks[1, 1], frame[4:, 4:])

    def test_roundtrip(self):
        rng = np.random.default_rng(6)
        frame = rng.normal(size=(20, 28))
        blocks = split_into_blocks(frame, 8)
        recovered = assemble_blocks(blocks, frame.shape)
        assert np.allclose(recovered, frame)

    def test_assemble_rejects_bad_shape(self):
        with pytest.raises(CodecError):
            assemble_blocks(np.zeros((2, 2, 8, 4)), (16, 16))

    def test_assemble_rejects_oversized_target(self):
        with pytest.raises(CodecError):
            assemble_blocks(np.zeros((1, 1, 8, 8)), (16, 16))

    def test_rejects_non_2d_frame(self):
        with pytest.raises(CodecError):
            pad_to_blocks(np.zeros((2, 2, 2)), 8)
