"""Self-healing shards: crash-anytime equivalence, quarantine, chaos.

The supervisor's contract is that worker death is invisible in the
output: for any shard count, backend and engine, killing (or stalling,
or poisoning) any worker at any chunk boundary under supervision
yields bit-for-bit the match stream of an uninterrupted run — same
matches, same canonical order — because the shard is respawned from
its rolling snapshot and the window batches since then are replayed
from the in-memory log. Exhausting the restart budget must *degrade*
(queries flagged, surviving shards exact), never corrupt. This suite
drives randomized workloads (hypothesis) through that promise, plus
deterministic coverage for the chaos plan format, the dead-worker
error path, crash-aware shared-memory sweeping and close() hygiene.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DetectorConfig
from repro.core.query import Query, QuerySet
from repro.errors import ServeError, WorkerDeadError
from repro.minhash.family import MinHashFamily
from repro.serve import (
    ChaosEvent,
    ChaosPlan,
    CheckpointManager,
    DetectionService,
    ShmBatchRing,
    SupervisorConfig,
)

CELL_SPACE = 500
NUM_HASHES = 32
WINDOW_SECONDS = 2.5
KEYFRAMES_PER_SECOND = 2.0  # w = 5 key frames
SHARD_COUNTS = (1, 2, 5)

#: A short deadline keeps thread-backend kill detection fast (a killed
#: thread just stops replying; death is only observable as silence).
FAST = SupervisorConfig(recv_deadline=1.0)


def _make_query(family, queries, frames, qid):
    distinct = np.unique(np.asarray(queries[qid], dtype=np.int64))
    return Query(qid=qid, cell_ids=distinct, num_frames=frames[qid],
                 sketch=family.sketch(distinct))


def _match_key(match):
    return (
        match.qid,
        match.window_index,
        match.start_frame,
        match.end_frame,
        match.similarity,
    )


@st.composite
def crash_workloads(draw):
    """Queries, a chunked stream with planted copies, and a chaos draw.

    ``at_seq`` ranges over every stream-message boundary the batching
    can produce (one batch per ``run`` call here), so hypothesis probes
    "kill any worker at any chunk boundary" directly.
    """
    family_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    num_queries = draw(st.integers(2, 5))
    queries = {}
    frames = {}
    for qid in range(num_queries):
        n = draw(st.integers(8, 30))
        queries[qid] = rng.integers(0, CELL_SPACE, size=n)
        frames[qid] = n
    threshold = draw(st.sampled_from([0.05, 0.3, 0.5]))
    window_frames = round(WINDOW_SECONDS * KEYFRAMES_PER_SECOND)
    num_chunks = draw(st.integers(2, 4))
    chunks = []
    for _ in range(num_chunks):
        length = draw(st.integers(1, 5)) * window_frames
        chunk = rng.integers(0, CELL_SPACE, size=length)
        victim = draw(st.sampled_from(sorted(queries)))
        copy = np.asarray(queries[victim])[:length]
        at = draw(st.integers(0, length - copy.size))
        chunk[at : at + copy.size] = copy
        chunks.append(chunk)
    kind = draw(st.sampled_from(["kill", "kill", "poison"]))
    at_seq = draw(st.integers(1, num_chunks))
    return family_seed, queries, frames, threshold, chunks, kind, at_seq


def _service(config, family, queries, frames, num_workers, backend,
             **extra):
    return DetectionService(
        config,
        QuerySet.from_cell_ids(queries, frames, family),
        KEYFRAMES_PER_SECOND,
        num_workers=num_workers,
        backend=backend,
        **extra,
    )


def _drive(service, chunks):
    for position, chunk in enumerate(chunks):
        service.run([chunk], flush=position == len(chunks) - 1)
    return [_match_key(m) for m in service.matches]


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("vectorized", [False, True],
                         ids=["scalar", "columnar"])
@settings(max_examples=5, deadline=None)
@given(workload=crash_workloads())
def test_crash_anytime_equals_uninterrupted(backend, vectorized, workload):
    family_seed, queries, frames, threshold, chunks, kind, at_seq = workload
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=family_seed)
    config = DetectorConfig(
        num_hashes=NUM_HASHES,
        threshold=threshold,
        window_seconds=WINDOW_SECONDS,
        vectorized=vectorized,
    )
    reference = _service(config, family, queries, frames, 2, "serial")
    expected = _drive(reference, chunks)
    reference.close()
    for num_workers in SHARD_COUNTS:
        # The service clamps the shard count to the query count.
        effective = min(num_workers, len(queries))
        victim = at_seq % effective  # any worker, any boundary
        plan = ChaosPlan((
            ChaosEvent(kind=kind, worker_id=victim, at_seq=at_seq),
        ))
        service = _service(
            config, family, queries, frames, num_workers, backend,
            supervise=True, chaos=plan, supervisor=FAST,
        )
        try:
            got = _drive(service, chunks)
            assert got == expected, (
                f"{kind}:{victim}@{at_seq} under {num_workers} "
                f"{backend} shards diverged from the uninterrupted run"
            )
            counters = service.metrics_snapshot()["counters"]
            assert counters.get("serve.supervisor.kills", 0) >= 1
            assert counters.get("serve.supervisor.restarts", 0) >= 1
            if backend == "process":
                assert service.metrics_snapshot()["serve"][
                    "shm_outstanding_refs"
                ] == 0, "crashed worker leaked shared-memory refs"
        finally:
            service.close()


@settings(max_examples=5, deadline=None)
@given(workload=crash_workloads(), barrier=st.integers(1, 3))
def test_checkpoint_resume_mid_recovery(tmp_path_factory, workload,
                                        barrier):
    """A checkpoint taken *after* a supervised recovery restores into a
    run whose total match stream equals the uninterrupted one."""
    family_seed, queries, frames, threshold, chunks, kind, at_seq = workload
    barrier = min(barrier, len(chunks) - 1)
    at_seq = min(at_seq, barrier)  # crash before the checkpoint barrier
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=family_seed)
    config = DetectorConfig(
        num_hashes=NUM_HASHES,
        threshold=threshold,
        window_seconds=WINDOW_SECONDS,
        vectorized=True,
    )
    reference = _service(config, family, queries, frames, 2, "serial")
    expected = _drive(reference, chunks)
    reference.close()

    manager = CheckpointManager(
        tmp_path_factory.mktemp("supervised-ckpt")
    )
    plan = ChaosPlan((
        ChaosEvent(kind=kind, worker_id=0, at_seq=at_seq),
    ))
    first = _service(
        config, family, queries, frames, 2, "thread",
        supervise=True, chaos=plan, supervisor=FAST,
    )
    for chunk in chunks[:barrier]:
        first.run([chunk], flush=False)
    assert first.registry.counter("serve.supervisor.restarts") >= 1
    first.checkpoint(manager)
    first.close()

    resumed = DetectionService.restore(
        manager, expected_config=config, backend="thread",
        supervise=True, supervisor=FAST,
    )
    try:
        for position in range(barrier, len(chunks)):
            resumed.run([chunks[position]],
                        flush=position == len(chunks) - 1)
        assert [_match_key(m) for m in resumed.matches] == expected
    finally:
        resumed.close()


def _fixed_workload():
    rng = np.random.default_rng(42)
    queries = {qid: rng.integers(0, CELL_SPACE, size=20)
               for qid in range(4)}
    frames = {qid: 20 for qid in queries}
    chunks = []
    for _ in range(6):
        chunk = rng.integers(0, CELL_SPACE, size=20)
        victim = int(rng.integers(0, 4))
        chunk[:20] = np.asarray(queries[victim])[:20]
        chunks.append(chunk)
    return queries, frames, chunks


def test_quarantine_flags_queries_and_keeps_survivors_exact():
    """Budget exhaustion quarantines the shard: its queries stay listed
    (``degraded``), the service reports partial output, planner load
    biases away from the dead shard, and the surviving shard's matches
    are bit-for-bit the reference's."""
    queries, frames, chunks = _fixed_workload()
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=3)
    config = DetectorConfig(num_hashes=NUM_HASHES, threshold=0.3,
                            window_seconds=WINDOW_SECONDS)
    reference = _service(config, family, queries, frames, 2, "serial")
    expected = _drive(reference, chunks)
    shard_of = {qid: reference.shard_of(qid) for qid in queries}
    reference.close()

    plan = ChaosPlan((ChaosEvent("kill", worker_id=0, at_seq=2),))
    service = _service(
        config, family, queries, frames, 2, "thread",
        supervise=True, chaos=plan,
        supervisor=SupervisorConfig(recv_deadline=1.0, max_restarts=0),
    )
    try:
        got = _drive(service, chunks)
        assert service.degraded_shards() == [0]
        assert service.partial
        counters = service.metrics_snapshot()["counters"]
        assert counters["serve.supervisor.quarantines"] == 1
        # Flagged, not dropped: every query is still listed, the dead
        # shard's with the degraded status.
        status = {info.qid: info.status for info in service.list_queries()}
        assert set(status) == set(queries)
        for qid, shard in shard_of.items():
            assert status[qid] == (
                "degraded" if shard == 0 else "active"
            )
        # Stream message 2 starts basic window 4 on this workload; the
        # quarantined shard contributed nothing from there on, and the
        # survivors are exact.
        survivors = [
            key for key in expected
            if shard_of[key[0]] != 0 or key[1] < 4
        ]
        assert got == survivors
        # New subscriptions route around the quarantined shard.
        extra = _make_query(
            family, {9: np.arange(20) % CELL_SPACE}, {9: 20}, 9
        )
        assert service.subscribe(extra) != 0
    finally:
        service.close()


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_unsupervised_dead_worker_raises_not_hangs(backend):
    """Satellite: without supervision, a dead worker must surface as a
    typed ``WorkerDeadError`` (worker id + acked watermark), never as
    an indefinite ``recv`` hang — and ``close()`` must still succeed,
    twice, afterwards."""
    queries, frames, chunks = _fixed_workload()
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=3)
    config = DetectorConfig(num_hashes=NUM_HASHES, threshold=0.3,
                            window_seconds=WINDOW_SECONDS)
    service = _service(config, family, queries, frames, 2, backend)
    try:
        service.run([chunks[0]], flush=False)
        service._executor.kill(0)
        with pytest.raises(WorkerDeadError) as caught:
            for chunk in chunks[1:]:
                service.run([chunk], flush=False)
        assert caught.value.worker_id == 0
        assert caught.value.last_acked >= 1
    finally:
        service.close()
        service.close()  # idempotent, including after a crash


def test_close_is_idempotent_on_healthy_service():
    queries, frames, chunks = _fixed_workload()
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=3)
    config = DetectorConfig(num_hashes=NUM_HASHES, threshold=0.3,
                            window_seconds=WINDOW_SECONDS)
    service = _service(config, family, queries, frames, 2, "thread")
    _drive(service, chunks)
    service.close()
    service.close()


# ----------------------------------------------------------------------
# shared-memory crash hygiene (satellite)
# ----------------------------------------------------------------------


class _Batch:
    """Minimal publishable payload (shape of a WindowBatch)."""

    def __init__(self, base_seq=0):
        self.base_seq = base_seq
        self.chunk_windows = np.asarray([1], dtype=np.int64)
        self.indices = np.asarray([0], dtype=np.int64)
        self.starts = np.asarray([0], dtype=np.int64)
        self.frames = np.asarray([5], dtype=np.int64)
        self.sketch_values = np.zeros((1, NUM_HASHES), dtype=np.int64)
        self.plane_qids = None
        self.ge = None
        self.lt = None
        self.num_chunks = 1


def test_shm_reader_refcounts_survive_crashes():
    ring = ShmBatchRing(2)
    try:
        descriptor = ring.publish(
            _Batch(), readers=[0, 1], wait_for_slot=lambda: None
        )
        assert ring.total_outstanding_refs() == 2
        assert ring.outstanding() == {descriptor.slot: (0, 1)}
        # Releasing the same reader twice is a no-op, not a double-free
        # (a replayed reply must not corrupt the arming of the slot).
        ring.release(descriptor.slot, 0)
        ring.release(descriptor.slot, 0)
        assert ring.total_outstanding_refs() == 1
        # A crashed reader's refs are swept in one pass.
        assert ring.sweep_reader(1) == 1
        assert ring.total_outstanding_refs() == 0
        # Fully released slots reject further releases.
        with pytest.raises(ServeError):
            ring.release(descriptor.slot, 1)
        # sweep_all clears whatever is left at teardown.
        ring.publish(_Batch(1), readers=[7], wait_for_slot=lambda: None)
        assert ring.sweep_all() == 1
        assert ring.total_outstanding_refs() == 0
    finally:
        ring.close()


# ----------------------------------------------------------------------
# chaos plan format
# ----------------------------------------------------------------------


def test_chaos_plan_parse_and_render_round_trip():
    plan = ChaosPlan.parse("kill:0@2, stall:1@3:0.25, poison:0@7")
    assert plan.spec() == "kill:0@2,stall:1@3:0.25,poison:0@7"
    assert [e.kind for e in plan.for_worker(0)] == ["kill", "poison"]
    assert plan.for_worker(1)[0].stall_seconds == 0.25
    assert ChaosPlan.parse(plan.spec()).spec() == plan.spec()


def test_chaos_plan_rejects_malformed_specs():
    with pytest.raises(ServeError):
        ChaosPlan.parse("melt:0@2")  # unknown kind
    with pytest.raises(ServeError):
        ChaosPlan.parse("kill:0@0")  # positions are 1-based
    with pytest.raises(ServeError):
        ChaosPlan.parse("kill:0@2,kill:0@2")  # duplicate slot
    with pytest.raises(ServeError):
        ChaosEvent("stall", worker_id=0, at_seq=1)  # needs a duration
    plan = ChaosPlan.parse("kill:5@1")
    with pytest.raises(ServeError):
        plan.validate_workers(2)


def test_chaos_plan_generation_is_deterministic():
    one = ChaosPlan.generate(99, num_workers=3, horizon=10)
    two = ChaosPlan.generate(99, num_workers=3, horizon=10)
    other = ChaosPlan.generate(100, num_workers=3, horizon=10)
    assert one.spec() == two.spec()
    assert one.spec() != other.spec()
    assert all(1 <= e.at_seq <= 10 for e in one.events)
    assert {e.worker_id for e in one.events} == {0, 1, 2}
    one.validate_workers(3)
