"""White-box tests of the engine internals (ladder structure, stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.core.detector import StreamingDetector
from repro.core.engine_geometric import GeometricEngine
from repro.core.monitor import EngineStats
from repro.core.query import QuerySet
from repro.minhash.family import MinHashFamily

KF_RATE = 1.0


def _detector(order=CombinationOrder.GEOMETRIC, representation=Representation.SKETCH,
              window_seconds=10.0, num_query_frames=200):
    family = MinHashFamily(num_hashes=64, seed=2)
    queries = QuerySet.from_cell_ids(
        {0: np.arange(1000, 1100)}, {0: num_query_frames}, family
    )
    config = DetectorConfig(
        num_hashes=64,
        order=order,
        representation=representation,
        window_seconds=window_seconds,
        use_index=False,
    )
    return StreamingDetector(config, queries, KF_RATE)


class TestGeometricLadder:
    def test_binary_counter_sizes(self, rng):
        """After n windows the ladder sizes are the binary decomposition
        of n (while under the expiry cap)."""
        detector = _detector()
        engine = detector.engine
        assert isinstance(engine, GeometricEngine)
        for n in range(1, 14):
            detector.process_cell_ids(rng.integers(0, 500, size=10))
            sizes = [segment.size for segment in engine.segments]
            expected = [
                1 << bit for bit in range(n.bit_length()) if n & (1 << bit)
            ]
            assert sorted(sizes) == sorted(expected), (n, sizes)

    def test_sizes_strictly_decreasing_toward_tail(self, rng):
        detector = _detector()
        engine = detector.engine
        detector.process_cell_ids(rng.integers(0, 500, size=11 * 10))
        sizes = [segment.size for segment in engine.segments]
        assert sizes == sorted(sizes, reverse=True)

    def test_segments_are_contiguous(self, rng):
        detector = _detector()
        engine = detector.engine
        detector.process_cell_ids(rng.integers(0, 500, size=13 * 10))
        cursor = engine.segments[0].start_frame
        for segment in engine.segments:
            assert segment.start_frame == cursor
            cursor = segment.end_frame

    def test_expiry_drops_oldest(self, rng):
        # Query 200 frames -> cap = ceil(2*200/10) = 40 windows.
        detector = _detector()
        engine = detector.engine
        detector.process_cell_ids(rng.integers(0, 500, size=100 * 10))
        total = sum(segment.size for segment in engine.segments)
        assert total <= detector.context.global_max_windows
        assert detector.stats.expired_candidates > 0


class TestEngineStatsAccounting:
    def test_probe_count_matches_windows(self, rng):
        family = MinHashFamily(num_hashes=64, seed=2)
        queries = QuerySet.from_cell_ids(
            {0: np.arange(1000, 1100)}, {0: 50}, family
        )
        detector = StreamingDetector(
            DetectorConfig(num_hashes=64, window_seconds=10.0, use_index=True),
            queries,
            KF_RATE,
        )
        detector.process_cell_ids(rng.integers(0, 500, size=70))
        assert detector.stats.index_probes == detector.stats.windows_processed == 7

    def test_bit_mode_never_combines_sketches(self, rng):
        detector = _detector(
            order=CombinationOrder.SEQUENTIAL,
            representation=Representation.BIT,
        )
        detector.process_cell_ids(rng.integers(0, 500, size=200))
        assert detector.stats.sketch_combines == 0
        assert detector.stats.sketch_comparisons == 0

    def test_sketch_mode_never_uses_signatures(self, rng):
        detector = _detector(
            order=CombinationOrder.SEQUENTIAL,
            representation=Representation.SKETCH,
        )
        detector.process_cell_ids(rng.integers(0, 500, size=200))
        assert detector.stats.signature_combines == 0
        assert detector.stats.signature_encodes == 0

    def test_signature_memory_bytes(self):
        stats = EngineStats()
        stats.signatures_maintained.extend([10.0, 20.0])
        assert stats.signature_memory_bytes(num_hashes=400) == pytest.approx(
            15.0 * 800 / 8
        )

    def test_summary_format(self):
        stats = EngineStats()
        stats.windows_processed = 5
        text = stats.summary()
        assert "windows=5" in text and "matches=0" in text


class TestWindowSeconds:
    def test_window_frames_rounding(self):
        detector = _detector(window_seconds=7.4)
        assert detector.window_frames == 7
        detector = _detector(window_seconds=7.6)
        assert detector.window_frames == 8

    def test_subsecond_window_clamps_to_one_frame(self):
        detector = _detector(window_seconds=0.2)
        assert detector.window_frames == 1
