"""Tests for query-set persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CombinationOrder, DetectorConfig
from repro.core.query import QuerySet
from repro.minhash.family import MinHashFamily
from repro.persistence import (
    PersistenceError,
    load_query_set,
    load_recorded_config,
    save_query_set,
)


@pytest.fixture()
def query_set():
    family = MinHashFamily(num_hashes=64, seed=12)
    return QuerySet.from_cell_ids(
        {
            3: np.arange(100, 140),
            7: np.arange(500, 520),
            11: np.array([9, 3, 3, 77]),
        },
        {3: 40, 7: 20, 11: 4},
        family,
        labels={3: "ad-campaign", 7: "trailer", 11: "jingle"},
    )


class TestRoundtrip:
    def test_queries_identical(self, query_set, tmp_path):
        path = tmp_path / "queries.npz"
        save_query_set(query_set, path)
        restored = load_query_set(path)
        assert restored.query_ids == query_set.query_ids
        for qid in query_set.query_ids:
            original = query_set.get(qid)
            loaded = restored.get(qid)
            assert np.array_equal(loaded.cell_ids, original.cell_ids)
            assert loaded.num_frames == original.num_frames
            assert loaded.label == original.label
            assert np.array_equal(
                loaded.sketch.values, original.sketch.values
            )

    def test_family_identical(self, query_set, tmp_path):
        path = tmp_path / "queries.npz"
        save_query_set(query_set, path)
        restored = load_query_set(path)
        assert restored.family.fingerprint == query_set.family.fingerprint

    def test_restored_set_detects(self, query_set, tmp_path, rng):
        """A reloaded subscription finds the same copies."""
        from repro.config import DetectorConfig
        from repro.core.detector import StreamingDetector

        path = tmp_path / "queries.npz"
        save_query_set(query_set, path)
        restored = load_query_set(path)

        stream = np.concatenate(
            [rng.integers(100_000, 900_000, size=40),
             np.arange(100, 140),
             rng.integers(100_000, 900_000, size=40)]
        )
        config = DetectorConfig(num_hashes=64, threshold=0.7,
                                window_seconds=10.0)
        original_matches = StreamingDetector(
            config, query_set, 1.0
        ).process_cell_ids(stream)
        restored_matches = StreamingDetector(
            config, restored, 1.0
        ).process_cell_ids(stream)
        view = lambda ms: {(m.qid, m.start_frame, m.end_frame) for m in ms}
        assert view(restored_matches) == view(original_matches)
        assert view(original_matches), "sanity: the copy must be found"


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="no query-set file"):
            load_query_set(tmp_path / "absent.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(PersistenceError):
            load_query_set(path)

    def test_version_mismatch(self, query_set, tmp_path):
        path = tmp_path / "queries.npz"
        save_query_set(query_set, path)
        archive = dict(np.load(path, allow_pickle=True))
        archive["format_version"] = np.asarray([99])
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **archive, allow_pickle=True)
        with pytest.raises(PersistenceError, match="format version 99"):
            load_query_set(path)

    def test_missing_field(self, query_set, tmp_path):
        path = tmp_path / "queries.npz"
        save_query_set(query_set, path)
        archive = dict(np.load(path, allow_pickle=True))
        del archive["cells_3"]
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **archive, allow_pickle=True)
        with pytest.raises(PersistenceError, match="missing field"):
            load_query_set(path)


class TestRecordedConfig:
    """Format version 2: the detector config rides with the query set."""

    def _config(self, **overrides):
        base = dict(num_hashes=64, threshold=0.7, window_seconds=10.0)
        base.update(overrides)
        return DetectorConfig(**base)

    def test_roundtrip_and_match(self, query_set, tmp_path):
        path = tmp_path / "queries.npz"
        config = self._config(order=CombinationOrder.GEOMETRIC)
        save_query_set(query_set, path, config=config)
        assert load_recorded_config(path) == config
        load_query_set(path, expected_config=config)  # must not raise

    def test_mismatch_fails_loudly(self, query_set, tmp_path):
        """Every differing field is named with both values."""
        path = tmp_path / "queries.npz"
        save_query_set(query_set, path, config=self._config())
        other = self._config(threshold=0.9, vectorized=False)
        with pytest.raises(PersistenceError) as excinfo:
            load_query_set(path, expected_config=other)
        message = str(excinfo.value)
        assert "threshold: recorded=0.7 expected=0.9" in message
        assert "vectorized: recorded=True expected=False" in message

    def test_no_recorded_config_skips_check(self, query_set, tmp_path):
        """Files saved without a config have nothing to check against."""
        path = tmp_path / "queries.npz"
        save_query_set(query_set, path)
        assert load_recorded_config(path) is None
        load_query_set(path, expected_config=self._config())  # no raise

    def test_version1_file_still_loads(self, query_set, tmp_path):
        """Backward compatibility: v1 archives (no config) load fine."""
        path = tmp_path / "queries.npz"
        save_query_set(query_set, path, config=self._config())
        archive = dict(np.load(path, allow_pickle=True))
        archive["format_version"] = np.asarray([1])
        for key in [k for k in archive if k.startswith("config_")]:
            del archive[key]  # v1 files never carried config arrays
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **archive, allow_pickle=True)
        restored = load_query_set(path, expected_config=self._config())
        assert restored.query_ids == query_set.query_ids
        assert load_recorded_config(path) is None
