"""Hypothesis property tests over the whole codec.

Random small videos, random encoder settings — the invariants that must
hold for every combination: decode inverts encode within quantisation
tolerance, the partial decoder yields exactly the I frames, and the
bitstream parses back to its own header.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.bitstream import BitstreamReader
from repro.codec.gop import decode_dc_coefficients, decode_video, encode_video


@st.composite
def _video_settings(draw):
    num_frames = draw(st.integers(min_value=1, max_value=6))
    height = draw(st.sampled_from([8, 12, 16, 17]))
    width = draw(st.sampled_from([8, 16, 23, 24]))
    quality = draw(st.sampled_from([30, 60, 90]))
    gop_size = draw(st.integers(min_value=1, max_value=4))
    use_motion = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=1000))
    return num_frames, height, width, quality, gop_size, use_motion, seed


def _frames(num_frames, height, width, seed):
    """Smooth (video-like) content: coarse pattern + gentle drift.

    White noise would be pathological for any transform codec — real
    video is dominated by low frequencies, which is what the DCT +
    quantiser design assumes.
    """
    rng = np.random.default_rng(seed)
    coarse = rng.uniform(30, 220, size=((height + 3) // 4, (width + 3) // 4))
    base = np.kron(coarse, np.ones((4, 4)))[:height, :width]
    drift = rng.normal(0, 2, size=(num_frames, 1, 1)).cumsum(axis=0)
    return np.clip(base[np.newaxis] + drift, 0, 255)


@settings(max_examples=25, deadline=None)
@given(_video_settings())
def test_roundtrip_tolerance(settings_tuple):
    num_frames, height, width, quality, gop_size, use_motion, seed = (
        settings_tuple
    )
    frames = _frames(num_frames, height, width, seed)
    encoded = encode_video(
        frames,
        fps=25.0,
        quality=quality,
        gop_size=gop_size,
        use_motion=use_motion,
    )
    decoded = decode_video(encoded)
    assert decoded.shape == frames.shape
    assert decoded.min() >= 0.0 and decoded.max() <= 255.0
    # Quantisation tolerance loosens with lower quality.
    tolerance = {30: 20.0, 60: 12.0, 90: 6.0}[quality]
    assert np.abs(decoded - frames).mean() < tolerance


@settings(max_examples=25, deadline=None)
@given(_video_settings())
def test_partial_decoder_yields_exactly_the_i_frames(settings_tuple):
    num_frames, height, width, quality, gop_size, use_motion, seed = (
        settings_tuple
    )
    frames = _frames(num_frames, height, width, seed)
    encoded = encode_video(
        frames,
        fps=25.0,
        quality=quality,
        gop_size=gop_size,
        use_motion=use_motion,
    )
    indices = [index for index, _dc in decode_dc_coefficients(encoded)]
    assert indices == list(range(0, num_frames, gop_size))
    for _index, dc_grid in decode_dc_coefficients(encoded):
        assert dc_grid.shape == (-(-height // 8), -(-width // 8))


@settings(max_examples=25, deadline=None)
@given(_video_settings())
def test_header_self_describing(settings_tuple):
    num_frames, height, width, quality, gop_size, use_motion, seed = (
        settings_tuple
    )
    frames = _frames(num_frames, height, width, seed)
    encoded = encode_video(
        frames,
        fps=29.97,
        quality=quality,
        gop_size=gop_size,
        use_motion=use_motion,
    )
    reader = BitstreamReader(encoded.data)
    reader.read_magic()
    assert reader.read_uvarint() == width
    assert reader.read_uvarint() == height
    assert reader.read_uvarint() == 8  # block size
    assert reader.read_uvarint() == quality
    assert reader.read_uvarint() == gop_size
    assert reader.read_uvarint() == num_frames
    assert reader.read_uvarint() == 29970  # fps millis
