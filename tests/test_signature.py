"""Tests for bit-vector signatures (Definition 3, Lemmas 1 and 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignatureError
from repro.minhash.family import MinHashFamily
from repro.minhash.sketch import Sketch
from repro.signature.bitsig import BitSignature
from repro.signature.pruning import lemma2_bound, violates_lemma2


def _sketch(values, family=(None,)):
    array = np.asarray(values, dtype=np.int64)
    return Sketch(values=array, family=(len(array), 0, 1 << 31))


class TestEncode:
    def test_relations(self):
        candidate = _sketch([5, 3, 3])
        query = _sketch([3, 3, 5])
        signature = BitSignature.encode(candidate, query)
        assert signature.relation(0) == ">"
        assert signature.relation(1) == "="
        assert signature.relation(2) == "<"

    def test_counts(self):
        candidate = _sketch([5, 3, 3, 1])
        query = _sketch([3, 3, 5, 9])
        signature = BitSignature.encode(candidate, query)
        assert signature.n0 == 1  # one ">"
        assert signature.n1 == 2  # two "<"
        assert signature.equal_count == 1

    def test_lemma1_similarity(self):
        candidate = _sketch([1, 2, 3, 4])
        query = _sketch([1, 2, 9, 0])
        signature = BitSignature.encode(candidate, query)
        # 2 equal of 4 -> 0.5; n0=1 (4>0), n1=1 (3<9).
        assert signature.similarity == pytest.approx(0.5)

    def test_lemma1_matches_sketch_similarity(self):
        family = MinHashFamily(num_hashes=128, seed=3)
        a = family.sketch(range(0, 40))
        b = family.sketch(range(20, 60))
        signature = BitSignature.encode(a, b)
        assert signature.similarity == pytest.approx(a.similarity(b))

    def test_cross_family_rejected(self):
        a = MinHashFamily(num_hashes=8, seed=1).sketch([1])
        b = MinHashFamily(num_hashes=8, seed=2).sketch([1])
        with pytest.raises(SignatureError):
            BitSignature.encode(a, b)

    def test_definition3_pairs(self):
        candidate = _sketch([5, 3, 1])
        query = _sketch([3, 3, 3])
        vector = BitSignature.encode(candidate, query).interleaved()
        # ">" -> 00, "=" -> 01, "<" -> 11; pairs at (2r, 2r+1).
        assert (vector >> 0) & 0b11 == 0b00
        assert (vector >> 2) & 0b11 == 0b01
        assert (vector >> 4) & 0b11 == 0b11


class TestCombine:
    def test_or_matches_min_merge(self):
        """The six-case table of Section V-A, exhaustively."""
        query = _sketch([5])
        cases = [3, 5, 7]  # <, =, > relative to the query value
        for left in cases:
            for right in cases:
                sig_left = BitSignature.encode(_sketch([left]), query)
                sig_right = BitSignature.encode(_sketch([right]), query)
                merged_sketch = _sketch([min(left, right)])
                expected = BitSignature.encode(merged_sketch, query)
                combined = sig_left.combine(sig_right)
                assert combined.ge == expected.ge
                assert combined.lt == expected.lt

    def test_combine_wide_sketches(self):
        family = MinHashFamily(num_hashes=64, seed=4)
        query = family.sketch(range(30))
        part_a = family.sketch(range(0, 10))
        part_b = family.sketch(range(10, 40))
        whole = part_a.combine(part_b)
        combined = BitSignature.encode(part_a, query).combine(
            BitSignature.encode(part_b, query)
        )
        direct = BitSignature.encode(whole, query)
        assert combined.ge == direct.ge and combined.lt == direct.lt

    def test_combine_width_mismatch_rejected(self):
        a = BitSignature(ge=0, lt=0, num_hashes=4)
        b = BitSignature(ge=0, lt=0, num_hashes=8)
        with pytest.raises(SignatureError):
            a.combine(b)

    def test_similarity_monotone_under_combination(self):
        # Combining can only keep or lower the equal count for positions
        # that were ">", and can lose "=" positions; n1 never shrinks.
        family = MinHashFamily(num_hashes=64, seed=5)
        query = family.sketch(range(50))
        sig = BitSignature.encode(family.sketch(range(0, 25)), query)
        grown = sig.combine(
            BitSignature.encode(family.sketch(range(100, 160)), query)
        )
        assert grown.n1 >= sig.n1


class TestValidation:
    def test_rejects_invalid_plane_pair(self):
        # lt bit set without ge bit is the impossible pair "10".
        with pytest.raises(SignatureError):
            BitSignature(ge=0b00, lt=0b01, num_hashes=2)

    def test_rejects_overwide_planes(self):
        with pytest.raises(SignatureError):
            BitSignature(ge=0b1000, lt=0, num_hashes=3)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(SignatureError):
            BitSignature(ge=0, lt=0, num_hashes=0)

    def test_relation_bounds(self):
        signature = BitSignature(ge=0, lt=0, num_hashes=2)
        with pytest.raises(SignatureError):
            signature.relation(2)


class TestLemma2:
    def test_bound_values(self):
        assert lemma2_bound(100, 0.7) == 30
        assert lemma2_bound(800, 0.7) == 240
        assert lemma2_bound(10, 1.0) == 0

    def test_bound_rejects_bad_inputs(self):
        with pytest.raises(SignatureError):
            lemma2_bound(0, 0.5)
        with pytest.raises(SignatureError):
            lemma2_bound(10, 1.5)

    def test_violation_detection(self):
        # 3 of 4 positions are "<" -> n1 = 3 > 4 * (1 - 0.7) = 1.2.
        signature = BitSignature.encode(_sketch([1, 1, 1, 9]), _sketch([5, 5, 5, 5]))
        assert violates_lemma2(signature, 0.7)
        assert not violates_lemma2(signature, 0.2)

    def test_matching_signature_never_pruned(self):
        """A candidate at or above δ similarity always survives Lemma 2."""
        family = MinHashFamily(num_hashes=256, seed=6)
        query = family.sketch(range(100))
        candidate = family.sketch(range(0, 110))  # superset: high overlap
        signature = BitSignature.encode(candidate, query)
        if signature.similarity >= 0.7:
            assert not violates_lemma2(signature, 0.7)

    @settings(max_examples=40)
    @given(
        st.lists(st.integers(0, 20), min_size=4, max_size=16),
        st.lists(st.integers(0, 20), min_size=4, max_size=16),
    )
    def test_lemma2_soundness(self, left, right):
        """If sim >= δ then the signature must pass the Lemma 2 filter."""
        size = min(len(left), len(right))
        candidate = _sketch(left[:size])
        query = _sketch(right[:size])
        signature = BitSignature.encode(candidate, query)
        for threshold in (0.5, 0.7, 0.9):
            if signature.similarity >= threshold:
                assert not violates_lemma2(signature, threshold)

    def test_pruning_cascades(self):
        """Once violated, any further combination still violates."""
        query = _sketch([5, 5, 5, 5])
        bad = BitSignature.encode(_sketch([1, 1, 1, 9]), query)
        assert violates_lemma2(bad, 0.7)
        extra = BitSignature.encode(_sketch([9, 9, 9, 9]), query)
        assert violates_lemma2(bad.combine(extra), 0.7)
