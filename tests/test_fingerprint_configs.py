"""End-to-end detection under non-default fingerprint configurations.

The unit tests pin each (d, u) component; these runs confirm the whole
pipeline stays coherent when the fingerprint geometry changes — the
property Table II's sweep depends on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DetectorConfig, FingerprintConfig
from repro.evaluation.runner import PreparedWorkload, run_detector
from repro.features.pipeline import FingerprintExtractor


@pytest.mark.parametrize(
    "d,u",
    [(3, 2), (4, 3), (5, 4), (7, 7)],
)
def test_vs1_detection_across_fingerprint_grid(vs1_stream, small_library, d, u):
    fingerprint = FingerprintConfig(d=d, u=u)
    prepared = PreparedWorkload.prepare(
        vs1_stream, small_library, fingerprint=fingerprint
    )
    assert (prepared.stream_cell_ids < fingerprint.num_cells).all()
    result = run_detector(prepared, DetectorConfig(num_hashes=192))
    # VS1 carries exact copies: every configuration detects them all.
    assert result.quality.recall == 1.0
    assert result.quality.precision == 1.0


@pytest.mark.parametrize("strategy", ["spread", "first", "center_out"])
def test_selector_strategies_end_to_end(vs1_stream, small_library, strategy):
    prepared = PreparedWorkload.prepare(
        vs1_stream, small_library, strategy=strategy
    )
    result = run_detector(prepared, DetectorConfig(num_hashes=192))
    assert result.quality.recall == 1.0


def test_block_grid_variants(vs1_stream, small_library):
    """Non-3x3 block grids (e.g. 4x4 with d=8) work end to end."""
    fingerprint = FingerprintConfig(block_rows=4, block_cols=4, d=8, u=3)
    prepared = PreparedWorkload.prepare(
        vs1_stream, small_library, fingerprint=fingerprint
    )
    result = run_detector(prepared, DetectorConfig(num_hashes=192))
    assert result.quality.recall == 1.0


def test_mismatched_fingerprints_do_not_cross_match(vs1_stream, small_library):
    """Queries fingerprinted under one (d, u) and a stream under another
    share no cell-id semantics — detection must not silently 'work'."""
    extractor_a = FingerprintExtractor(config=FingerprintConfig(d=5, u=4))
    extractor_b = FingerprintExtractor(config=FingerprintConfig(d=3, u=2))
    clip = small_library.clip(0)
    ids_a = extractor_a.cell_ids_from_clip(clip)
    ids_b = extractor_b.cell_ids_from_clip(clip)
    # The id universes differ in size; the sequences cannot agree.
    assert not np.array_equal(ids_a, ids_b)
