"""Tests for the min-hash family, sketches and basic windows."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.membership import jaccard_similarity
from repro.errors import SketchError
from repro.minhash.family import MERSENNE_PRIME_31, MinHashFamily
from repro.minhash.sketch import Sketch
from repro.minhash.windows import iter_basic_windows


class TestMinHashFamily:
    def test_deterministic(self):
        a = MinHashFamily(num_hashes=16, seed=1)
        b = MinHashFamily(num_hashes=16, seed=1)
        assert np.array_equal(
            a.sketch([1, 2, 3]).values, b.sketch([1, 2, 3]).values
        )

    def test_seed_changes_values(self):
        a = MinHashFamily(num_hashes=16, seed=1).sketch([1, 2, 3])
        b = MinHashFamily(num_hashes=16, seed=2).sketch([1, 2, 3])
        assert not np.array_equal(a.values, b.values)

    def test_fingerprint(self):
        family = MinHashFamily(num_hashes=16, seed=1)
        assert family.fingerprint == (16, 1, MERSENNE_PRIME_31)

    def test_hash_values_shape_and_range(self):
        family = MinHashFamily(num_hashes=8, seed=0)
        values = family.hash_values(np.array([0, 5, 100]))
        assert values.shape == (8, 3)
        assert (values >= 0).all() and (values < family.prime).all()

    def test_rejects_out_of_domain(self):
        family = MinHashFamily(num_hashes=4, seed=0)
        with pytest.raises(SketchError):
            family.hash_values(np.array([-1]))
        with pytest.raises(SketchError):
            family.hash_values(np.array([family.prime]))

    def test_rejects_bad_construction(self):
        with pytest.raises(SketchError):
            MinHashFamily(num_hashes=0)
        with pytest.raises(SketchError):
            MinHashFamily(num_hashes=4, prime=1)

    def test_sketch_duplicates_ignored(self):
        family = MinHashFamily(num_hashes=16, seed=1)
        assert np.array_equal(
            family.sketch([3, 3, 3, 7]).values, family.sketch([3, 7]).values
        )

    def test_empty_sketch(self):
        family = MinHashFamily(num_hashes=16, seed=1)
        empty = family.sketch([])
        assert empty.is_empty()
        assert (empty.values == family.prime).all()

    def test_sketch_accepts_ndarray(self):
        family = MinHashFamily(num_hashes=8, seed=1)
        assert np.array_equal(
            family.sketch(np.array([1, 5])).values, family.sketch([1, 5]).values
        )


class TestSketch:
    def test_combine_is_elementwise_min(self, family):
        a = family.sketch([1, 2])
        b = family.sketch([3, 4])
        combined = a.combine(b)
        assert np.array_equal(combined.values, np.minimum(a.values, b.values))

    def test_combine_equals_union_sketch(self, family):
        """Property 1: sketch(A ∪ B) == combine(sketch(A), sketch(B))."""
        a = family.sketch([1, 2, 9])
        b = family.sketch([2, 7, 40])
        union = family.sketch([1, 2, 7, 9, 40])
        assert np.array_equal(a.combine(b).values, union.values)

    def test_combine_associative_commutative_idempotent(self, family):
        a, b, c = (family.sketch(s) for s in ([1, 2], [3], [4, 5, 6]))
        assert np.array_equal(
            a.combine(b).combine(c).values, a.combine(b.combine(c)).values
        )
        assert np.array_equal(a.combine(b).values, b.combine(a).values)
        assert np.array_equal(a.combine(a).values, a.values)

    def test_empty_is_identity(self, family):
        a = family.sketch([1, 2, 3])
        assert np.array_equal(a.combine(family.empty_sketch()).values, a.values)

    def test_self_similarity_is_one(self, family):
        a = family.sketch([1, 2, 3])
        assert a.similarity(a) == 1.0

    def test_disjoint_similarity_near_zero(self):
        family = MinHashFamily(num_hashes=256, seed=9)
        a = family.sketch(range(0, 50))
        b = family.sketch(range(1000, 1050))
        assert a.similarity(b) < 0.05

    def test_cross_family_rejected(self):
        a = MinHashFamily(num_hashes=8, seed=1).sketch([1])
        b = MinHashFamily(num_hashes=8, seed=2).sketch([1])
        with pytest.raises(SketchError):
            a.combine(b)
        with pytest.raises(SketchError):
            a.similarity(b)

    def test_width_mismatch_rejected(self):
        with pytest.raises(SketchError):
            Sketch(values=np.zeros(4, dtype=np.int64), family=(8, 0, 31))

    def test_equal_count(self, family):
        a = family.sketch([1, 2, 3])
        assert a.equal_count(a) == family.num_hashes

    def test_copy_is_independent(self, family):
        a = family.sketch([1, 2])
        b = a.copy()
        b.values[0] = -1
        assert a.values[0] != -1


class TestJaccardEstimation:
    """The statistical heart: sketch similarity estimates Jaccard."""

    @pytest.mark.parametrize("overlap", [0.2, 0.5, 0.8])
    def test_estimator_tracks_jaccard(self, overlap):
        family = MinHashFamily(num_hashes=2048, seed=42)
        shared = int(100 * overlap / (2 - overlap))  # |A∩B| for target J
        only = 100 - shared
        a = list(range(shared)) + list(range(1000, 1000 + only))
        b = list(range(shared)) + list(range(2000, 2000 + only))
        true_jaccard = jaccard_similarity(a, b)
        estimate = family.sketch(a).similarity(family.sketch(b))
        assert estimate == pytest.approx(true_jaccard, abs=0.05)

    def test_estimator_unbiased_across_seeds(self):
        a = list(range(30))
        b = list(range(15, 45))
        true_jaccard = jaccard_similarity(a, b)
        estimates = [
            MinHashFamily(num_hashes=128, seed=s).sketch(a).similarity(
                MinHashFamily(num_hashes=128, seed=s).sketch(b)
            )
            for s in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(true_jaccard, abs=0.03)

    def test_more_hashes_less_variance(self):
        a = list(range(40))
        b = list(range(20, 60))
        def spread(num_hashes):
            estimates = [
                MinHashFamily(num_hashes=num_hashes, seed=s)
                .sketch(a)
                .similarity(MinHashFamily(num_hashes=num_hashes, seed=s).sketch(b))
                for s in range(15)
            ]
            return np.std(estimates)
        assert spread(512) < spread(32)

    @settings(max_examples=20, deadline=None)
    @given(
        st.sets(st.integers(0, 500), min_size=1, max_size=60),
        st.sets(st.integers(0, 500), min_size=1, max_size=60),
    )
    def test_estimate_within_sampling_error(self, set_a, set_b):
        family = MinHashFamily(num_hashes=1024, seed=7)
        true_jaccard = jaccard_similarity(list(set_a), list(set_b))
        estimate = family.sketch(list(set_a)).similarity(
            family.sketch(list(set_b))
        )
        # 1024 hashes -> sampling std <= 0.016; allow 5 sigma.
        assert abs(estimate - true_jaccard) < 0.08


class TestBasicWindows:
    def test_window_count_and_indices(self, family):
        ids = np.arange(25)
        windows = list(iter_basic_windows(ids, 10, family))
        assert [w.index for w in windows] == [0, 1, 2]
        assert [w.num_frames for w in windows] == [10, 10, 5]

    def test_drop_partial(self, family):
        ids = np.arange(25)
        windows = list(iter_basic_windows(ids, 10, family, drop_partial=True))
        assert len(windows) == 2

    def test_frame_spans(self, family):
        windows = list(iter_basic_windows(np.arange(20), 10, family))
        assert windows[0].start_frame == 0 and windows[0].end_frame == 10
        assert windows[1].start_frame == 10 and windows[1].end_frame == 20

    def test_cell_ids_distinct_sorted(self, family):
        ids = np.array([5, 3, 5, 3, 1])
        window = next(iter(iter_basic_windows(ids, 5, family)))
        assert window.cell_ids.tolist() == [1, 3, 5]

    def test_sketch_matches_family(self, family):
        ids = np.array([5, 3, 5])
        window = next(iter(iter_basic_windows(ids, 3, family)))
        assert np.array_equal(window.sketch.values, family.sketch([3, 5]).values)

    def test_combined_windows_equal_whole(self, family):
        """Property 1 at the window level."""
        ids = np.arange(30)
        windows = list(iter_basic_windows(ids, 10, family))
        combined = windows[0].sketch.combine(windows[1].sketch).combine(
            windows[2].sketch
        )
        whole = family.sketch(ids)
        assert np.array_equal(combined.values, whole.values)

    def test_rejects_bad_window(self, family):
        with pytest.raises(SketchError):
            list(iter_basic_windows(np.arange(5), 0, family))

    def test_rejects_bad_ndim(self, family):
        with pytest.raises(SketchError):
            list(iter_basic_windows(np.zeros((2, 2)), 2, family))
