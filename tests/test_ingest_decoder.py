"""Tests for the resilient decoder, segment placement and degradation
policies."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.codec.resync import DCSegment
from repro.config import DetectorConfig
from repro.core.query import QuerySet
from repro.errors import IngestError
from repro.features.pipeline import FingerprintExtractor
from repro.ingest import (
    DegradationPolicy,
    ResilientDecoder,
    StreamChunk,
    StreamSession,
    SyntheticSource,
)
from repro.ingest.decoder import _place_segments
from repro.minhash.family import MinHashFamily

KFPS = 2.0  # INGEST_FORMAT fps 12 / gop 6


def _grid(value):
    return np.full((2, 2), float(value))


def _segment(slots, values):
    return DCSegment(
        kf_slots=slots,
        dc_grids=[_grid(v) for v in values],
        record_count=len(values),
    )


class TestPlaceSegments:
    def _values(self, placed):
        return [
            (start, [float(g[0, 0]) for g in grids])
            for start, grids in placed
        ]

    def test_anchored_segments_keep_their_slots(self):
        placed = _place_segments(
            [_segment([0, 1], [0, 1]), _segment([3], [3])], 4
        )
        assert self._values(placed) == [(0, [0.0, 1.0]), (3, [3.0])]

    def test_unanchored_run_packs_against_next_anchor(self):
        placed = _place_segments(
            [_segment([0], [0]), _segment(None, [9]), _segment([3], [3])],
            4,
        )
        # The orphan most plausibly sits just before the re-anchor point.
        assert self._values(placed) == [
            (0, [0.0]), (2, [9.0]), (3, [3.0])
        ]

    def test_unanchored_overlap_trimmed(self):
        placed = _place_segments(
            [
                _segment([0, 1], [0, 1]),
                _segment(None, [7, 8, 9]),
                _segment([3], [3]),
            ],
            4,
        )
        # Only slot 2 is free between the anchors; the run keeps its
        # rightmost grid.
        assert self._values(placed) == [
            (0, [0.0, 1.0]), (2, [9.0]), (3, [3.0])
        ]

    def test_trailing_unanchored_clamped_to_total(self):
        placed = _place_segments(
            [_segment([0], [0]), _segment(None, [5, 6, 7, 8, 9])], 4
        )
        values = self._values(placed)
        assert values[0] == (0, [0.0])
        occupied = sum(len(grids) for _, grids in values)
        assert occupied <= 4


class TestResilientDecoder:
    @pytest.fixture()
    def extractor(self):
        return FingerprintExtractor()

    def test_clean_chunk_single_segment(self, extractor):
        src = SyntheticSource(0, seed=5, num_chunks=1)
        chunk = StreamChunk(0, 0, src.encode_chunk(0))
        decoded = ResilientDecoder(extractor).decode_chunk(chunk)
        assert decoded.clean
        assert decoded.keyframes_decoded == chunk.expected_keyframes
        assert [s for s, _ in decoded.segments] == [0]
        expected = extractor.cell_ids_from_encoded(chunk.payload)
        np.testing.assert_array_equal(decoded.segments[0][1], expected)

    def test_corrupt_chunk_bounded_and_positional(self, extractor):
        src = SyntheticSource(0, seed=6, num_chunks=1, chunk_seconds=4.0)
        encoded = src.encode_chunk(0)
        clean_ids = extractor.cell_ids_from_encoded(encoded)
        data = bytearray(encoded.data)
        data[len(data) // 2] = 0x00
        chunk = StreamChunk(
            0, 0, dataclasses.replace(encoded, data=bytes(data))
        )
        decoded = ResilientDecoder(extractor).decode_chunk(chunk)
        assert decoded.keyframes_decoded <= chunk.expected_keyframes
        prev_end = -1
        for start, ids in decoded.segments:
            assert start > prev_end
            prev_end = start + ids.shape[0] - 1
            assert prev_end < chunk.expected_keyframes
        # Anchored recoveries reproduce the clean fingerprints.
        for start, ids in decoded.segments:
            np.testing.assert_array_equal(
                ids, clean_ids[start : start + ids.shape[0]]
            )

    def test_destroyed_header_counts_whole_chunk(self, extractor):
        src = SyntheticSource(0, seed=7, num_chunks=1)
        encoded = src.encode_chunk(0)
        data = bytearray(encoded.data)
        data[0] ^= 0xFF
        chunk = StreamChunk(
            0, 0, dataclasses.replace(encoded, data=bytes(data))
        )
        decoded = ResilientDecoder(extractor).decode_chunk(chunk)
        assert decoded.header_lost
        assert decoded.keyframes_decoded == 0
        assert decoded.keyframes_damaged == chunk.expected_keyframes

    def test_cell_id_passthrough_needs_no_extractor(self):
        ids = np.arange(9)
        decoded = ResilientDecoder().decode_chunk(StreamChunk(0, 0, ids))
        assert decoded.clean
        np.testing.assert_array_equal(decoded.segments[0][1], ids)

    def test_encoded_without_extractor_rejected(self):
        src = SyntheticSource(0, seed=8, num_chunks=1)
        chunk = StreamChunk(0, 0, src.encode_chunk(0))
        with pytest.raises(IngestError):
            ResilientDecoder().decode_chunk(chunk)


def _session(policy, extractor, hint=0, threshold=0.7):
    src = SyntheticSource(0, seed=40, num_chunks=1)
    query_ids = extractor.cell_ids_from_encoded(src.encode_chunk(0))
    family = MinHashFamily(num_hashes=64, seed=0)
    queries = QuerySet.from_cell_ids(
        {1: query_ids}, {1: int(query_ids.shape[0])}, family
    )
    config = DetectorConfig(
        num_hashes=64, threshold=threshold, window_seconds=2.0
    )
    return StreamSession(
        0, config, queries, KFPS,
        extractor=extractor, policy=policy, chunk_keyframes_hint=hint,
    )


class TestStreamSessionPolicies:
    @pytest.fixture()
    def extractor(self):
        return FingerprintExtractor()

    def _damaged_chunk(self, seed=41):
        """A chunk whose second key frame is unrecoverable: its I record
        type byte is smashed, so resync can only lock onto the next GOP."""
        from repro.codec.bitstream import BitstreamReader
        from repro.codec.gop import _read_header, walk_dc_record

        src = SyntheticSource(0, seed=seed, num_chunks=1, chunk_seconds=4.0)
        encoded = src.encode_chunk(0)
        reader = BitstreamReader(encoded.data)
        width, height, block_size, _q, _g, _n, _fps, entropy = _read_header(
            reader, len(encoded.data)
        )
        num_blocks = (-(-width // block_size)) * (-(-height // block_size))
        victim = None
        keyframes_seen = 0
        for _ in range(encoded.num_frames):
            position = reader.position
            frame_type, _levels = walk_dc_record(reader, num_blocks, entropy)
            if frame_type == b"I":
                keyframes_seen += 1
                if keyframes_seen == 2:
                    victim = position
                    break
        assert victim is not None
        data = bytearray(encoded.data)
        data[victim] = 0x00
        return StreamChunk(
            0, 0, dataclasses.replace(encoded, data=bytes(data))
        )

    def test_skip_window_keeps_clock_honest(self, extractor):
        session = _session(DegradationPolicy.SKIP_WINDOW, extractor)
        chunk = self._damaged_chunk()
        session.process_chunk(chunk)
        counter = session.registry.counter
        expected = counter("ingest.frames_expected")
        assert expected == chunk.expected_keyframes
        # Clock covers every expected frame: decoded + skipped.
        clock = session.detector.frames_processed
        pending = session.monitor.pending_frames
        skipping = session.monitor.skip_remaining
        assert clock + pending - skipping == expected

    def test_zero_fill_processes_every_frame(self, extractor):
        session = _session(DegradationPolicy.ZERO_FILL, extractor)
        chunk = self._damaged_chunk()
        session.process_chunk(chunk)
        counter = session.registry.counter
        assert counter("ingest.frames_filled") > 0
        assert (
            session.detector.frames_processed
            + session.monitor.pending_frames
            == counter("ingest.frames_expected")
        )

    def test_fail_policy_raises_and_marks_failed(self, extractor):
        session = _session(DegradationPolicy.FAIL, extractor)
        with pytest.raises(IngestError):
            session.process_chunk(self._damaged_chunk())
        assert session.failed

    def test_duplicate_chunks_deduplicated(self, extractor):
        session = _session(DegradationPolicy.SKIP_WINDOW, extractor)
        src = SyntheticSource(0, seed=40, num_chunks=1)
        chunk = StreamChunk(0, 0, src.encode_chunk(0))
        session.process_chunk(chunk)
        frames_after_first = session.registry.counter(
            "ingest.frames_expected"
        )
        assert session.process_chunk(chunk) == []
        counter = session.registry.counter
        assert counter("ingest.chunks_duplicate") == 1
        assert counter("ingest.frames_expected") == frames_after_first

    def test_sequence_gap_advances_clock_with_hint(self, extractor):
        session = _session(
            DegradationPolicy.SKIP_WINDOW, extractor, hint=4
        )
        src = SyntheticSource(0, seed=40, num_chunks=3)
        session.process_chunk(StreamChunk(0, 0, src.encode_chunk(0)))
        # Chunk 1 lost in flight; chunk 2 arrives next.
        session.process_chunk(StreamChunk(0, 2, src.encode_chunk(2)))
        counter = session.registry.counter
        assert counter("ingest.chunks_missing") == 1
        assert counter("ingest.frames_missing") == 4
        clock = session.detector.frames_processed
        pending = session.monitor.pending_frames
        skipping = session.monitor.skip_remaining
        assert clock + pending - skipping == 12  # 3 chunks' worth

    def test_wrong_stream_rejected(self, extractor):
        session = _session(DegradationPolicy.SKIP_WINDOW, extractor)
        src = SyntheticSource(5, seed=40, num_chunks=1)
        with pytest.raises(IngestError):
            session.process_chunk(StreamChunk(5, 0, src.encode_chunk(0)))

    def test_clean_chunk_detects_planted_query(self, extractor):
        session = _session(
            DegradationPolicy.SKIP_WINDOW, extractor, threshold=0.6
        )
        src = SyntheticSource(0, seed=40, num_chunks=1)
        matches = session.process_chunk(
            StreamChunk(0, 0, src.encode_chunk(0))
        )
        matches += session.finish()
        assert matches
        assert session.registry.counter("ingest.matches") == len(matches)
