"""Tests for shot boundary detection and shot-aligned reordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.membership import jaccard_similarity
from repro.errors import VideoError
from repro.features.pipeline import FingerprintExtractor
from repro.video.clip import VideoClip, concat_clips
from repro.video.reorder import reorder_at_shots
from repro.video.shots import detect_shot_boundaries, shot_spans
from repro.video.synth import ClipSynthesizer


def _two_shot_clip(frames_per_shot=10, seed=0):
    """Two visually distinct shots with mild within-shot noise."""
    rng = np.random.default_rng(seed)
    shot_a = np.clip(
        40.0 + rng.normal(0, 2, size=(frames_per_shot, 16, 24)), 0, 255
    )
    gradient = np.tile(np.linspace(60, 220, 24), (16, 1))
    shot_b = np.clip(
        gradient[np.newaxis] + rng.normal(0, 2, size=(frames_per_shot, 16, 24)),
        0,
        255,
    )
    frames = np.concatenate([shot_a, shot_b])
    return VideoClip(frames=frames, fps=2.0, label="two-shot")


class TestDetectShotBoundaries:
    def test_finds_the_cut(self):
        clip = _two_shot_clip(frames_per_shot=10)
        assert detect_shot_boundaries(clip) == [10]

    def test_no_cut_in_single_shot(self):
        rng = np.random.default_rng(1)
        frames = np.clip(
            100.0 + rng.normal(0, 2, size=(20, 16, 24)), 0, 255
        )
        clip = VideoClip(frames=frames, fps=2.0, label="one-shot")
        assert detect_shot_boundaries(clip) == []

    def test_single_frame_clip(self):
        clip = VideoClip(frames=np.full((1, 8, 8), 50.0), fps=1.0, label="x")
        assert detect_shot_boundaries(clip) == []

    def test_min_shot_frames_suppression(self):
        # Three alternating shots of 3 frames each; with min_shot_frames=5
        # at most one boundary per 5 frames survives.
        pieces = [_two_shot_clip(frames_per_shot=3, seed=s) for s in range(2)]
        clip = concat_clips(pieces, label="rapid")
        loose = detect_shot_boundaries(clip, min_shot_frames=1)
        tight = detect_shot_boundaries(clip, min_shot_frames=5)
        assert len(tight) <= len(loose)
        for first, second in zip(tight, tight[1:]):
            assert second - first >= 5

    def test_synthetic_clip_shot_count_plausible(self):
        # ~60 s at 4 s/shot average -> expect a two-digit shot count.
        clip = ClipSynthesizer(seed=5).generate_clip(60.0, label="s", fps=2.0)
        boundaries = detect_shot_boundaries(clip)
        assert 5 <= len(boundaries) <= 30

    def test_rejects_bad_params(self):
        clip = _two_shot_clip()
        with pytest.raises(VideoError):
            detect_shot_boundaries(clip, threshold_factor=1.0)
        with pytest.raises(VideoError):
            detect_shot_boundaries(clip, min_shot_frames=0)


class TestShotSpans:
    def test_spans_cover_clip(self):
        clip = ClipSynthesizer(seed=6).generate_clip(30.0, label="s", fps=2.0)
        spans = shot_spans(clip)
        assert spans[0][0] == 0
        assert spans[-1][1] == clip.num_frames
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start

    def test_two_shot_spans(self):
        clip = _two_shot_clip(frames_per_shot=10)
        assert shot_spans(clip) == [(0, 10), (10, 20)]


class TestReorderAtShots:
    def test_preserves_frames(self):
        clip = ClipSynthesizer(seed=7).generate_clip(40.0, label="s", fps=2.0)
        reordered, permutation = reorder_at_shots(clip, seed=1)
        assert reordered.num_frames == clip.num_frames
        assert len(permutation) >= 2
        assert np.allclose(
            np.sort(reordered.frames.sum(axis=(1, 2))),
            np.sort(clip.frames.sum(axis=(1, 2))),
        )

    def test_single_shot_untouched(self):
        rng = np.random.default_rng(2)
        frames = np.clip(100.0 + rng.normal(0, 2, size=(12, 16, 24)), 0, 255)
        clip = VideoClip(frames=frames, fps=2.0, label="flat")
        reordered, permutation = reorder_at_shots(clip, seed=1)
        assert permutation == (0,)
        assert np.array_equal(reordered.frames, clip.frames)

    def test_set_similarity_invariant(self):
        """The headline property: shot-aligned reordering leaves the
        fingerprint set (and hence Definition-2 similarity) untouched."""
        clip = ClipSynthesizer(seed=8).generate_clip(40.0, label="s", fps=2.0)
        reordered, _perm = reorder_at_shots(clip, seed=3)
        extractor = FingerprintExtractor()
        similarity = jaccard_similarity(
            extractor.cell_ids_from_clip(clip),
            extractor.cell_ids_from_clip(reordered),
        )
        assert similarity == 1.0

    def test_deterministic(self):
        clip = ClipSynthesizer(seed=9).generate_clip(30.0, label="s", fps=2.0)
        a, pa = reorder_at_shots(clip, seed=4)
        b, pb = reorder_at_shots(clip, seed=4)
        assert pa == pb and np.array_equal(a.frames, b.frames)
