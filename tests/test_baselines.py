"""Tests for the Seq, Warp and membership baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.membership import MembershipMatcher, jaccard_similarity
from repro.baselines.seq import SeqMatcher, frame_distance_matrix, ordinal_signature
from repro.baselines.warp import WarpMatcher, dtw_distance
from repro.errors import EvaluationError


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity([1, 2, 3], [1, 2, 3]) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity([1, 2], [3, 4]) == 0.0

    def test_half_overlap(self):
        assert jaccard_similarity([1, 2], [2, 3]) == pytest.approx(1 / 3)

    def test_duplicates_ignored(self):
        assert jaccard_similarity([1, 1, 2], [1, 2, 2]) == 1.0

    def test_empty_is_zero(self):
        assert jaccard_similarity([], []) == 0.0

    def test_symmetry(self):
        assert jaccard_similarity([1, 5, 9], [5, 7]) == jaccard_similarity(
            [5, 7], [1, 5, 9]
        )


class TestMembershipMatcher:
    def test_retrieve_threshold(self):
        matcher = MembershipMatcher(threshold=0.6)
        collection = {
            0: np.array([1, 2, 3, 4]),
            1: np.array([1, 2, 3, 9]),
            2: np.array([50, 51]),
        }
        hits = matcher.retrieve(np.array([1, 2, 3, 4]), collection)
        assert [cid for cid, _ in hits] == [0, 1]
        assert hits[0][1] == 1.0

    def test_retrieval_quality_perfect(self):
        matcher = MembershipMatcher(threshold=0.9)
        collection = {i: np.arange(i * 10, i * 10 + 5) for i in range(4)}
        precision, recall = matcher.retrieval_quality(collection, collection)
        assert precision == 1.0 and recall == 1.0

    def test_retrieval_quality_loose_threshold(self):
        # At threshold 0 every clip is retrieved for every query:
        # precision = 1/m, recall = 1.
        matcher = MembershipMatcher(threshold=0.0)
        collection = {i: np.arange(i * 10, i * 10 + 5) for i in range(4)}
        precision, recall = matcher.retrieval_quality(collection, collection)
        assert recall == 1.0
        assert precision == pytest.approx(0.25)

    def test_empty_retrieval_precision_one(self):
        matcher = MembershipMatcher(threshold=0.9)
        queries = {0: np.array([1, 2, 3])}
        collection = {0: np.array([50, 51, 52])}
        precision, recall = matcher.retrieval_quality(queries, collection)
        assert precision == 1.0 and recall == 0.0

    def test_rejects_bad_threshold(self):
        with pytest.raises(EvaluationError):
            MembershipMatcher(threshold=1.5)

    def test_rejects_empty_queries(self):
        with pytest.raises(EvaluationError):
            MembershipMatcher().retrieval_quality({}, {})


class TestOrdinalSignature:
    def test_rank_values(self):
        means = np.array([[10.0, 30.0, 20.0]])
        assert ordinal_signature(means).tolist() == [[0, 2, 1]]

    def test_monotone_invariance(self):
        means = np.array([[10.0, 30.0, 20.0, 5.0]])
        scaled = means * 3.7 + 12.0
        assert np.array_equal(ordinal_signature(means), ordinal_signature(scaled))

    def test_each_row_is_permutation(self):
        rng = np.random.default_rng(0)
        means = rng.uniform(0, 255, size=(10, 9))
        ranks = ordinal_signature(means)
        for row in ranks:
            assert sorted(row.tolist()) == list(range(9))

    def test_rejects_bad_ndim(self):
        with pytest.raises(EvaluationError):
            ordinal_signature(np.zeros(9))


class TestFrameDistance:
    def test_identical_frames_zero(self):
        ranks = ordinal_signature(np.random.default_rng(1).uniform(size=(3, 9)))
        matrix = frame_distance_matrix(ranks, ranks)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_range(self):
        rng = np.random.default_rng(2)
        a = ordinal_signature(rng.uniform(size=(5, 9)))
        b = ordinal_signature(rng.uniform(size=(7, 9)))
        matrix = frame_distance_matrix(a, b)
        assert matrix.shape == (5, 7)
        assert (matrix >= 0).all() and (matrix <= 1.0).all()

    def test_opposite_orders_maximal(self):
        up = ordinal_signature(np.arange(9.0)[np.newaxis, :])
        down = ordinal_signature(np.arange(9.0)[::-1][np.newaxis, :])
        assert frame_distance_matrix(up, down)[0, 0] == 1.0

    def test_dim_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            frame_distance_matrix(np.zeros((2, 9), int), np.zeros((2, 8), int))


class TestSeqMatcher:
    def _ranks(self, seed, length=60):
        rng = np.random.default_rng(seed)
        return ordinal_signature(rng.uniform(0, 255, size=(length, 9)))

    def test_finds_exact_copy(self):
        stream = self._ranks(0, 200)
        query = stream[80:120]
        matcher = SeqMatcher(distance_threshold=0.05, gap_frames=5)
        matches = matcher.find_matches(query, stream)
        assert any(m["start_frame"] == 80 for m in matches)

    def test_misses_reordered_copy(self):
        """The headline weakness: block-shuffled copies escape Seq."""
        rng = np.random.default_rng(3)
        stream = self._ranks(0, 200)
        query = stream[80:120].copy()
        # Reorder the stream copy in 4 blocks.
        blocks = np.array_split(np.arange(80, 120), 4)
        order = [2, 0, 3, 1]
        shuffled = np.concatenate([blocks[i] for i in order])
        reordered_stream = stream.copy()
        reordered_stream[80:120] = stream[shuffled]
        matcher = SeqMatcher(distance_threshold=0.05, gap_frames=5)
        assert not matcher.find_matches(query, reordered_stream)

    def test_gap_controls_positions(self):
        stream = self._ranks(0, 100)
        query = stream[:20]
        matcher = SeqMatcher(distance_threshold=2.0, gap_frames=25)
        matches = matcher.find_matches(query, stream)
        assert [m["start_frame"] for m in matches] == [0, 25, 50, 75]

    def test_short_stream_no_matches(self):
        query = self._ranks(0, 50)
        stream = self._ranks(1, 10)
        assert SeqMatcher().find_matches(query, stream) == []

    def test_window_distance_prefix_rule(self):
        a = self._ranks(0, 30)
        b = self._ranks(0, 40)
        matcher = SeqMatcher()
        assert matcher.window_distance(a, b) == pytest.approx(0.0)

    def test_rejects_bad_params(self):
        with pytest.raises(EvaluationError):
            SeqMatcher(distance_threshold=-0.1)
        with pytest.raises(EvaluationError):
            SeqMatcher(gap_frames=0)


class TestDtw:
    def _ranks(self, seed, length=40):
        rng = np.random.default_rng(seed)
        return ordinal_signature(rng.uniform(0, 255, size=(length, 9)))

    def test_identical_zero(self):
        ranks = self._ranks(0)
        assert dtw_distance(ranks, ranks, band_width=3) == pytest.approx(0.0)

    def test_tolerates_local_retiming(self):
        """DTW absorbs frame-rate changes that break rigid alignment."""
        ranks = self._ranks(0, 60)
        # Drop every 5th frame (retiming).
        retimed = np.delete(ranks, np.arange(0, 60, 5), axis=0)
        warped = dtw_distance(ranks, retimed, band_width=8)
        rigid = SeqMatcher().window_distance(ranks, retimed)
        assert warped < rigid

    def test_defeated_by_block_reordering(self):
        """Monotone paths cannot undo segment transposition."""
        ranks = self._ranks(0, 60)
        blocks = np.array_split(np.arange(60), 4)
        reordered = ranks[np.concatenate([blocks[i] for i in (2, 0, 3, 1)])]
        assert dtw_distance(ranks, reordered, band_width=8) > 0.2

    def test_wider_band_never_worse(self):
        a = self._ranks(1, 30)
        b = self._ranks(2, 30)
        narrow = dtw_distance(a, b, band_width=1)
        wide = dtw_distance(a, b, band_width=10)
        assert wide <= narrow + 1e-12

    def test_different_lengths(self):
        a = self._ranks(1, 30)
        b = self._ranks(1, 45)
        assert dtw_distance(a, b, band_width=3) < 1.0

    def test_rejects_bad_inputs(self):
        a = self._ranks(0, 10)
        with pytest.raises(EvaluationError):
            dtw_distance(a, a, band_width=-1)
        with pytest.raises(EvaluationError):
            dtw_distance(a, np.zeros((5, 8), dtype=int), band_width=2)


class TestWarpMatcher:
    def test_finds_retimed_copy(self):
        rng = np.random.default_rng(4)
        stream_ranks = ordinal_signature(rng.uniform(0, 255, size=(150, 9)))
        query = stream_ranks[50:90].copy()
        # Retime the copy to 0.8x speed (32 frames covering the same
        # content) — the local tempo change DTW is built to absorb.
        region = np.round(np.linspace(50, 89, 32)).astype(int)
        stream2 = stream_ranks.copy()
        stream2[50:82] = stream_ranks[region]
        matcher = WarpMatcher(distance_threshold=0.2, band_width=8, gap_frames=5)
        matches = matcher.find_matches(query, stream2)
        assert any(45 <= m["start_frame"] <= 55 for m in matches)
        # The rigid matcher cannot absorb the retiming at this threshold.
        rigid = SeqMatcher(distance_threshold=0.2, gap_frames=5)
        assert not rigid.find_matches(query, stream2)

    def test_rejects_bad_params(self):
        with pytest.raises(EvaluationError):
            WarpMatcher(window_scale=0.5)
        with pytest.raises(EvaluationError):
            WarpMatcher(band_width=-1)

    def test_short_stream(self):
        rng = np.random.default_rng(5)
        ranks = ordinal_signature(rng.uniform(size=(10, 9)))
        assert WarpMatcher().find_matches(ranks, ranks[:5]) == []
