"""Golden equivalence: the sharded service vs the single-process detector.

The serving subsystem promises that sharding is *transparent*: for any
shard count, the merged match stream is bit-for-bit the single-process
detector's (same matches, same canonical order for the columnar
engines), stream-scoped counters replicate per shard, query-scoped
counters sum to the serial values, and a mid-stream checkpoint/restore
loses zero matches. This suite drives randomized workloads (hypothesis)
with subscribe/unsubscribe churn through 1, 2 and 5 shards for both
combination orders, both representations, and with the index on and
off; backend smoke tests cover the thread and process executors.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import Query, QuerySet
from repro.minhash.family import MinHashFamily
from repro.serve import DetectionService, canonical_sort_key

CELL_SPACE = 500
NUM_HASHES = 32
WINDOW_SECONDS = 2.5
KEYFRAMES_PER_SECOND = 2.0  # w = 5 key frames
SHARD_COUNTS = (1, 2, 5)

ALL_MODES = [
    pytest.param(order, representation, use_index,
                 id=f"{order.value}-{representation.value}-"
                    f"{'idx' if use_index else 'noidx'}")
    for order in CombinationOrder
    for representation in Representation
    for use_index in (False, True)
]

#: Stream-scoped counters: every shard processes the identical stream,
#: so these must equal the serial value (not sum to it).
REPLICATED = {
    "engine.windows_processed",
    "stream.frames_processed",
    "stream.partial_windows",
    "engine.index_probes",
    "engine.expired_candidates",
    "engine.sketch_combines",
}


def _match_key(match):
    return (
        match.qid,
        match.window_index,
        match.start_frame,
        match.end_frame,
        match.similarity,
    )


@st.composite
def workloads(draw):
    """A serving session: queries, stream chunks, churn actions."""
    family_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    num_queries = draw(st.integers(2, 6))
    queries = {}
    frames = {}
    for qid in range(num_queries):
        n = draw(st.integers(8, 40))
        queries[qid] = rng.integers(0, CELL_SPACE, size=n)
        frames[qid] = n

    threshold = draw(st.sampled_from([0.05, 0.3, 0.5, 0.7, 0.9]))

    window_frames = round(WINDOW_SECONDS * KEYFRAMES_PER_SECOND)
    num_chunks = draw(st.integers(1, 3))
    chunks = []
    actions = []
    next_qid = num_queries
    for position in range(num_chunks):
        final = position == num_chunks - 1
        num_windows = draw(st.integers(1, 10))
        length = num_windows * window_frames
        if final and draw(st.booleans()):
            length += draw(st.integers(1, window_frames - 1))  # partial
        chunk = rng.integers(0, CELL_SPACE, size=length)
        if draw(st.booleans()):
            victim = draw(st.sampled_from(sorted(queries)))
            copy = np.asarray(queries[victim])[:length]
            at = draw(st.integers(0, length - copy.size))
            chunk[at : at + copy.size] = copy
        chunks.append(chunk)
        if final:
            break
        action = draw(st.sampled_from(["none", "subscribe", "unsubscribe"]))
        if action == "subscribe":
            n = draw(st.integers(8, 40))
            queries[next_qid] = rng.integers(0, CELL_SPACE, size=n)
            frames[next_qid] = n
            actions.append(("subscribe", next_qid))
            next_qid += 1
        elif action == "unsubscribe":
            victim = draw(st.sampled_from(sorted(queries)[:num_queries]))
            actions.append(("unsubscribe", victim))
        else:
            actions.append(("none", -1))
    return family_seed, queries, frames, threshold, chunks, actions


def _make_query(family, queries, frames, qid):
    distinct = np.unique(np.asarray(queries[qid], dtype=np.int64))
    return Query(qid=qid, cell_ids=distinct, num_frames=frames[qid],
                 sketch=family.sketch(distinct))


def _initial_set(family, queries, frames, actions):
    subscribed_first = [
        qid for qid in queries if ("subscribe", qid) not in actions
    ]
    return QuerySet.from_cell_ids(
        {qid: queries[qid] for qid in subscribed_first},
        {qid: frames[qid] for qid in subscribed_first},
        family,
    )


def _run_service(config, family, queries, frames, chunks, actions,
                 num_workers, backend="serial", sketch_once=True):
    """Drive a service through the workload; returns (service, applied).

    ``applied`` records which churn actions actually executed: an
    unsubscribe is skipped when the victim is its shard's last query or
    was never subscribed, and the serial reference replays exactly the
    same decisions.
    """
    service = DetectionService(
        config,
        _initial_set(family, queries, frames, actions),
        KEYFRAMES_PER_SECOND,
        num_workers=num_workers,
        backend=backend,
        sketch_once=sketch_once,
    )
    applied = []  # (boundary, kind, qid) — kept aligned for the replay
    for position, chunk in enumerate(chunks):
        final = position == len(chunks) - 1
        service.run([chunk], flush=final)
        if final or position >= len(actions):
            continue
        kind, qid = actions[position]
        if kind == "subscribe":
            service.subscribe(_make_query(family, queries, frames, qid))
            applied.append((position, "subscribe", qid))
        elif kind == "unsubscribe":
            try:
                worker = service.shard_of(qid)
            except Exception:
                continue  # already unsubscribed earlier
            if service.shard_sizes()[worker] < 2:
                continue  # would empty the shard
            service.unsubscribe(qid)
            applied.append((position, "unsubscribe", qid))
    return service, applied


@pytest.mark.parametrize("order,representation,use_index", ALL_MODES)
@settings(max_examples=10, deadline=None)
@given(workload=workloads())
def test_sharded_equals_serial(order, representation, use_index, workload):
    family_seed, queries, frames, threshold, chunks, actions = workload
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=family_seed)
    config = DetectorConfig(
        num_hashes=NUM_HASHES,
        threshold=threshold,
        window_seconds=WINDOW_SECONDS,
        order=order,
        representation=representation,
        use_index=use_index,
        vectorized=True,
    )
    for num_workers in SHARD_COUNTS:
        service, applied = _run_service(
            config, family, queries, frames, chunks, actions, num_workers
        )
        # Which churn actions execute depends on shard topology (an
        # unsubscribe that would empty a shard is skipped), so the
        # serial reference replays exactly this run's applied actions.
        ref_detector, ref_matches = _serial_with_actions(
            config, family, queries, frames, chunks, applied
        )
        # Bit-for-bit stream: same matches in the canonical order.
        key = canonical_sort_key(order)
        assert [
            _match_key(m) for m in sorted(ref_matches, key=key)
        ] == [_match_key(m) for m in service.matches]
        _assert_counters(ref_detector, service)
        service.close()


@pytest.mark.parametrize("order,representation,use_index", ALL_MODES)
@settings(max_examples=5, deadline=None)
@given(workload=workloads())
def test_sketch_once_equals_self_sketching(
    order, representation, use_index, workload
):
    """Precomputed ``WindowBatch`` payloads are bit-for-bit the
    self-sketching reference: same merged matches, same counters
    (``engine.signature_encodes`` included — the precomputed-planes
    path must charge exactly what each shard's own encoder would)."""
    family_seed, queries, frames, threshold, chunks, actions = workload
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=family_seed)
    config = DetectorConfig(
        num_hashes=NUM_HASHES,
        threshold=threshold,
        window_seconds=WINDOW_SECONDS,
        order=order,
        representation=representation,
        use_index=use_index,
        vectorized=True,
    )
    for num_workers in SHARD_COUNTS:
        outputs = {}
        for sketch_once in (False, True):
            service, applied = _run_service(
                config, family, queries, frames, chunks, actions,
                num_workers, sketch_once=sketch_once,
            )
            merged = service.metrics_snapshot()
            assert merged["conflicts"] == []
            outputs[sketch_once] = (
                [_match_key(m) for m in service.matches],
                applied,
                {
                    name: value
                    for name, value in merged["counters"].items()
                    if name.startswith(("engine.", "stream."))
                },
            )
            service.close()
        assert outputs[True] == outputs[False]


@pytest.mark.parametrize(
    "representation,use_index",
    [(r, i) for r in Representation for i in (False, True)],
    ids=lambda v: getattr(v, "value", {False: "noidx", True: "idx"}.get(v)),
)
@pytest.mark.parametrize("vectorized", [False, True],
                         ids=["scalar", "columnar"])
def test_sketch_once_all_engines(representation, use_index, vectorized):
    """Both engine implementations accept precomputed payloads in every
    representation/index mode and reproduce the serial stream."""
    rng = np.random.default_rng(67)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=6)
    cells = {qid: rng.integers(0, CELL_SPACE, size=25) for qid in range(4)}
    frames = {qid: 25 for qid in cells}
    chunks = [rng.integers(0, CELL_SPACE, size=35) for _ in range(3)]
    chunks[1][4:29] = cells[1]
    config = DetectorConfig(
        num_hashes=NUM_HASHES, threshold=0.3,
        window_seconds=WINDOW_SECONDS,
        representation=representation, use_index=use_index,
        vectorized=vectorized,
    )
    detector = StreamingDetector(
        config, QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND,
    )
    monitor = LiveMonitor(detector)
    serial = []
    for chunk in chunks:
        serial.extend(monitor.push_cell_ids(chunk))
    serial.extend(monitor.flush())
    with DetectionService(
        config, QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND, num_workers=2, sketch_once=True,
        batch_chunks=2,
    ) as service:
        service.run(chunks)
        assert sorted(map(_match_key, service.matches)) == sorted(
            map(_match_key, serial)
        )
        counters = service.metrics_snapshot()["counters"]
        for name, value in detector.registry.counters():
            assert counters.get(name, 0) == value, name


def _serial_with_actions(config, family, queries, frames, chunks, applied):
    """Run the plain detector applying ``applied`` at the *same* chunk
    boundaries the service applied them at (skipped actions leave gaps,
    so each entry carries its boundary index)."""
    by_boundary = {boundary: (kind, qid) for boundary, kind, qid in applied}
    detector = StreamingDetector(
        config,
        _initial_set(
            family, queries, frames,
            [("subscribe", qid) for _, kind, qid in applied
             if kind == "subscribe"],
        ),
        KEYFRAMES_PER_SECOND,
    )
    monitor = LiveMonitor(detector)
    matches = []
    for index, chunk in enumerate(chunks):
        matches.extend(monitor.push_cell_ids(chunk))
        if index == len(chunks) - 1:
            break
        if index in by_boundary:
            kind, qid = by_boundary[index]
            if kind == "subscribe":
                detector.subscribe(
                    _make_query(family, queries, frames, qid)
                )
            else:
                detector.unsubscribe(qid)
    matches.extend(monitor.flush())
    return detector, matches


def _run_service_with_kill_resume(config, family, queries, frames, chunks,
                                  actions, num_workers, ckpt_dir,
                                  sketch_once=True,
                                  resume_sketch_once=None):
    """Like :func:`_run_service`, but kill/resume mid-stream.

    The service is checkpointed at the middle chunk boundary *after*
    that boundary's churn action executes (matching the CLI's
    ops-before-checkpoint ordering), closed, and restored from disk
    before the remaining chunks run. Returns (service, applied) with the
    restored service holding the full merged match stream.
    ``resume_sketch_once`` lets the restored service run the *other*
    protocol (checkpoint mode migration); default is no change.
    """
    if resume_sketch_once is None:
        resume_sketch_once = sketch_once
    service = DetectionService(
        config,
        _initial_set(family, queries, frames, actions),
        KEYFRAMES_PER_SECOND,
        num_workers=num_workers,
        sketch_once=sketch_once,
    )
    applied = []
    kill_at = (len(chunks) - 1) // 2 if len(chunks) > 1 else None
    for position, chunk in enumerate(chunks):
        final = position == len(chunks) - 1
        service.run([chunk], flush=final)
        if not final and position < len(actions):
            kind, qid = actions[position]
            if kind == "subscribe":
                service.subscribe(_make_query(family, queries, frames, qid))
                applied.append((position, "subscribe", qid))
            elif kind == "unsubscribe":
                try:
                    worker = service.shard_of(qid)
                except Exception:
                    worker = None  # already unsubscribed earlier
                if (worker is not None
                        and service.shard_sizes()[worker] >= 2):
                    service.unsubscribe(qid)
                    applied.append((position, "unsubscribe", qid))
        if position == kill_at and not final:
            path = service.checkpoint(ckpt_dir)
            service.close()
            service = DetectionService.restore(
                path, expected_config=config,
                sketch_once=resume_sketch_once,
            )
    return service, applied


@pytest.mark.parametrize("order,representation,use_index", ALL_MODES)
@settings(max_examples=5, deadline=None)
@given(workload=workloads())
def test_kill_resume_mid_churn_equals_serial(
    order, representation, use_index, workload
):
    """Churn + checkpoint kill/resume still equals the serial detector.

    The checkpoint lands immediately after a subscribe/unsubscribe
    (before the next chunk), the exact spot where stale columnar
    snapshots and leaked per-query state used to corrupt restores.
    """
    family_seed, queries, frames, threshold, chunks, actions = workload
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=family_seed)
    config = DetectorConfig(
        num_hashes=NUM_HASHES,
        threshold=threshold,
        window_seconds=WINDOW_SECONDS,
        order=order,
        representation=representation,
        use_index=use_index,
        vectorized=True,
    )
    for num_workers in SHARD_COUNTS:
        # tempfile (not the tmp_path fixture): function-scoped fixtures
        # trip hypothesis' health check across examples.
        with tempfile.TemporaryDirectory() as tmp:
            service, applied = _run_service_with_kill_resume(
                config, family, queries, frames, chunks, actions,
                num_workers, Path(tmp),
            )
            ref_detector, ref_matches = _serial_with_actions(
                config, family, queries, frames, chunks, applied
            )
            key = canonical_sort_key(order)
            assert [
                _match_key(m) for m in sorted(ref_matches, key=key)
            ] == [_match_key(m) for m in service.matches]
            _assert_counters(ref_detector, service)
            service.close()


@pytest.mark.parametrize(
    "before,after", [(False, True), (True, False)],
    ids=["legacy-to-frontend", "frontend-to-legacy"],
)
@settings(max_examples=5, deadline=None)
@given(workload=workloads())
def test_checkpoint_migrates_between_sketch_modes(before, after, workload):
    """A snapshot taken in one sketch mode resumes losslessly in the
    other: the undigested partial-window buffer moves between the
    service front end and the worker monitors, whichever side the
    resumed service sketches on."""
    family_seed, queries, frames, threshold, chunks, actions = workload
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=family_seed)
    config = DetectorConfig(
        num_hashes=NUM_HASHES,
        threshold=threshold,
        window_seconds=WINDOW_SECONDS,
        representation=Representation.BIT,
        use_index=False,
        vectorized=True,
    )
    for num_workers in (1, 2):
        with tempfile.TemporaryDirectory() as tmp:
            service, applied = _run_service_with_kill_resume(
                config, family, queries, frames, chunks, actions,
                num_workers, Path(tmp),
                sketch_once=before, resume_sketch_once=after,
            )
            ref_detector, ref_matches = _serial_with_actions(
                config, family, queries, frames, chunks, applied
            )
            key = canonical_sort_key(config.order)
            assert [
                _match_key(m) for m in sorted(ref_matches, key=key)
            ] == [_match_key(m) for m in service.matches]
            _assert_counters(ref_detector, service)
            service.close()


@pytest.mark.parametrize(
    "before,after",
    [(False, True), (True, False), (True, True), (False, False)],
    ids=["legacy-to-frontend", "frontend-to-legacy",
         "frontend-to-frontend", "legacy-to-legacy"],
)
def test_mode_migration_carries_partial_buffer(before, after, tmp_path):
    """Ragged chunks leave a non-empty partial-window buffer at the
    checkpoint barrier; whichever mode resumes must carry it over."""
    rng = np.random.default_rng(101)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=11)
    cells = {qid: rng.integers(0, CELL_SPACE, size=25) for qid in range(4)}
    frames = {qid: 25 for qid in cells}
    # w = 5 key frames; 13-frame chunks keep 3 then 1 frames buffered
    # at the first two barriers.
    chunks = [rng.integers(0, CELL_SPACE, size=13) for _ in range(4)]
    chunks[1][0:13] = cells[2][5:18]
    config = DetectorConfig(
        num_hashes=NUM_HASHES, threshold=0.2,
        window_seconds=WINDOW_SECONDS,
        representation=Representation.BIT, use_index=False,
    )
    detector = StreamingDetector(
        config, QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND,
    )
    monitor = LiveMonitor(detector)
    serial = []
    for chunk in chunks:
        serial.extend(monitor.push_cell_ids(chunk))
    serial.extend(monitor.flush())

    service = DetectionService(
        config, QuerySet.from_cell_ids(cells, frames, family),
        KEYFRAMES_PER_SECOND, num_workers=2, sketch_once=before,
    )
    service.run(chunks[:2], flush=False)
    path = service.checkpoint(tmp_path)
    service.close()
    resumed = DetectionService.restore(
        path, expected_config=config, sketch_once=after
    )
    resumed.run(chunks[2:], flush=True)
    assert [_match_key(m) for m in resumed.matches] == [
        _match_key(m) for m in serial
    ]
    counters = resumed.metrics_snapshot()["counters"]
    for name, value in detector.registry.counters():
        assert counters.get(name, 0) == value, name
    resumed.close()


@pytest.mark.parametrize("order,representation,use_index", ALL_MODES)
@settings(max_examples=10, deadline=None)
@given(workload=workloads())
def test_scalar_matches_columnar_under_churn(
    order, representation, use_index, workload
):
    """Golden equivalence of the two engine implementations under churn.

    A subscribe must not leave the columnar path scoring a stale query
    column set, and an unsubscribe must purge the query's columns; the
    scalar store keys state by qid and is immune, so any divergence in
    the match streams pins the bug on the vectorized path.
    """
    family_seed, queries, frames, threshold, chunks, actions = workload
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=family_seed)
    initial = [qid for qid in queries if ("subscribe", qid) not in actions]
    results = {}
    for vectorized in (False, True):
        config = DetectorConfig(
            num_hashes=NUM_HASHES,
            threshold=threshold,
            window_seconds=WINDOW_SECONDS,
            order=order,
            representation=representation,
            use_index=use_index,
            vectorized=vectorized,
        )
        detector = StreamingDetector(
            config,
            _initial_set(family, queries, frames, actions),
            KEYFRAMES_PER_SECOND,
        )
        monitor = LiveMonitor(detector)
        subscribed = set(initial)
        matches = []
        for position, chunk in enumerate(chunks):
            matches.extend(monitor.push_cell_ids(chunk))
            if position == len(chunks) - 1 or position >= len(actions):
                continue
            kind, qid = actions[position]
            if kind == "subscribe":
                detector.subscribe(_make_query(family, queries, frames, qid))
                subscribed.add(qid)
            elif (kind == "unsubscribe" and qid in subscribed
                    and len(subscribed) > 1):
                detector.unsubscribe(qid)
                subscribed.discard(qid)
        matches.extend(monitor.flush())
        results[vectorized] = sorted(map(_match_key, matches))
    assert results[False] == results[True]


def _assert_counters(ref_detector, service):
    """Merged counters match serial: replicated equal, additive sum."""
    merged = service.metrics_snapshot()
    serial = dict(ref_detector.registry.counters())
    assert merged["conflicts"] == [], merged["conflicts"]
    for name, value in serial.items():
        assert merged["counters"].get(name, 0) == value, name


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backends_match_serial(backend):
    """The concurrent executors produce the serial backend's output."""
    rng = np.random.default_rng(23)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=4)
    cells = {qid: rng.integers(0, CELL_SPACE, size=30) for qid in range(5)}
    frames = {qid: 30 for qid in cells}
    chunks = [rng.integers(0, CELL_SPACE, size=40) for _ in range(3)]
    chunks[1][5:35] = cells[2]
    config = DetectorConfig(
        num_hashes=NUM_HASHES, threshold=0.3,
        window_seconds=WINDOW_SECONDS,
    )

    def run(backend_name):
        queries = QuerySet.from_cell_ids(cells, frames, family)
        with DetectionService(
            config, queries, KEYFRAMES_PER_SECOND,
            num_workers=3, backend=backend_name,
        ) as service:
            service.run(chunks)
            return list(service.matches)

    assert [_match_key(m) for m in run(backend)] == [
        _match_key(m) for m in run("serial")
    ]


@pytest.mark.parametrize("order", list(CombinationOrder))
def test_checkpoint_restore_loses_nothing(order, tmp_path):
    """Mid-stream snapshot + restore reproduces the uninterrupted run."""
    rng = np.random.default_rng(31)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=9)
    cells = {qid: rng.integers(0, CELL_SPACE, size=25) for qid in range(4)}
    frames = {qid: 25 for qid in cells}
    chunks = [rng.integers(0, CELL_SPACE, size=35) for _ in range(4)]
    chunks[0][3:28] = cells[1]
    chunks[2][7:32] = cells[3]
    config = DetectorConfig(
        num_hashes=NUM_HASHES, threshold=0.3,
        window_seconds=WINDOW_SECONDS, order=order,
    )

    def fresh_queries():
        return QuerySet.from_cell_ids(cells, frames, family)

    uninterrupted = DetectionService(
        config, fresh_queries(), KEYFRAMES_PER_SECOND, num_workers=2
    )
    uninterrupted.run(chunks)

    first = DetectionService(
        config, fresh_queries(), KEYFRAMES_PER_SECOND, num_workers=2
    )
    first.run(chunks[:2], flush=False)
    path = first.checkpoint(tmp_path)
    first.close()

    resumed = DetectionService.restore(path, expected_config=config)
    assert resumed.chunks_ingested == 2
    resumed.run(chunks[2:], flush=True)

    assert [_match_key(m) for m in resumed.matches] == [
        _match_key(m) for m in uninterrupted.matches
    ]
    merged_a = uninterrupted.metrics_snapshot()["counters"]
    merged_b = resumed.metrics_snapshot()["counters"]
    for name in [k for k in merged_a if k.startswith(("engine.", "stream."))]:
        assert merged_a[name] == merged_b[name], name
    uninterrupted.close()
    resumed.close()


def test_scalar_engines_match_after_canonical_sort():
    """Scalar (vectorized=False) workers: set-iteration order differs,
    but the canonically sorted stream still equals serial."""
    rng = np.random.default_rng(51)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=2)
    cells = {qid: rng.integers(0, CELL_SPACE, size=28) for qid in range(4)}
    frames = {qid: 28 for qid in cells}
    chunks = [rng.integers(0, CELL_SPACE, size=30) for _ in range(2)]
    chunks[0][1:29] = cells[0]
    for order in CombinationOrder:
        config = DetectorConfig(
            num_hashes=NUM_HASHES, threshold=0.3,
            window_seconds=WINDOW_SECONDS, order=order, vectorized=False,
        )
        detector = StreamingDetector(
            config, QuerySet.from_cell_ids(cells, frames, family),
            KEYFRAMES_PER_SECOND,
        )
        monitor = LiveMonitor(detector)
        serial = []
        for chunk in chunks:
            serial.extend(monitor.push_cell_ids(chunk))
        serial.extend(monitor.flush())
        with DetectionService(
            config, QuerySet.from_cell_ids(cells, frames, family),
            KEYFRAMES_PER_SECOND, num_workers=2,
        ) as service:
            service.run(chunks)
            assert sorted(map(_match_key, service.matches)) == sorted(
                map(_match_key, serial)
            )
