"""Detection semantics with related / overlapping queries.

Real subscription sets contain related material — a full film and a
trailer cut from it, two versions of one ad. These tests pin how the
engine behaves when query sets overlap or nest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.query import QuerySet
from repro.minhash.family import MinHashFamily

KF_RATE = 1.0


def _detector(cell_id_map, frames_map, threshold=0.6):
    family = MinHashFamily(num_hashes=256, seed=4)
    queries = QuerySet.from_cell_ids(cell_id_map, frames_map, family)
    config = DetectorConfig(
        num_hashes=256, threshold=threshold, window_seconds=10.0
    )
    return StreamingDetector(config, queries, KF_RATE)


class TestNestedQueries:
    def test_superset_copy_matches_both(self, rng):
        """A copy of the full video matches the full query and (as a
        superset) the trailer query too — by Definition 2 the trailer's
        Jaccard against a window covering it is its share of the union."""
        full = np.arange(1000, 1100)       # 100 frames
        trailer = np.arange(1000, 1030)    # its first 30 frames
        detector = _detector(
            {0: full, 1: trailer}, {0: 100, 1: 30}, threshold=0.85
        )
        stream = np.concatenate(
            [rng.integers(100_000, 900_000, size=50), full,
             rng.integers(100_000, 900_000, size=50)]
        )
        matches = detector.process_cell_ids(stream)
        matched = {m.qid for m in matches}
        assert 0 in matched, "the full query must match its copy"
        # The trailer query can only reach J = 30/100 against windows
        # spanning the full copy, but candidates covering just its span
        # reach ~1.0 — so it matches as well.
        assert 1 in matched

    def test_trailer_copy_matches_only_trailer(self, rng):
        """A trailer airing does NOT trigger the full-video query at a
        high threshold (J = 30/100)."""
        full = np.arange(1000, 1100)
        trailer = np.arange(1000, 1030)
        detector = _detector(
            {0: full, 1: trailer}, {0: 100, 1: 30}, threshold=0.8
        )
        stream = np.concatenate(
            [rng.integers(100_000, 900_000, size=50), trailer,
             rng.integers(100_000, 900_000, size=50)]
        )
        matches = detector.process_cell_ids(stream)
        matched = {m.qid for m in matches}
        assert 1 in matched
        assert 0 not in matched

    def test_trailer_copy_triggers_full_at_loose_threshold(self, rng):
        """At δ = 0.25 the 30 % overlap is a legitimate Definition-1
        match for the full query too."""
        full = np.arange(1000, 1100)
        trailer = np.arange(1000, 1030)
        detector = _detector(
            {0: full, 1: trailer}, {0: 100, 1: 30}, threshold=0.25
        )
        stream = np.concatenate(
            [rng.integers(100_000, 900_000, size=50), trailer,
             rng.integers(100_000, 900_000, size=50)]
        )
        matched = {m.qid for m in detector.process_cell_ids(stream)}
        assert matched == {0, 1}


class TestSiblingQueries:
    def test_half_overlapping_versions(self, rng):
        """Two ad versions sharing half their content: a copy of version
        A matches A strongly and B at ~J = 1/3."""
        version_a = np.arange(1000, 1060)
        version_b = np.concatenate(
            [np.arange(1030, 1060), np.arange(5000, 5030)]
        )
        detector = _detector(
            {0: version_a, 1: version_b}, {0: 60, 1: 60}, threshold=0.6
        )
        stream = np.concatenate(
            [rng.integers(100_000, 900_000, size=50), version_a,
             rng.integers(100_000, 900_000, size=50)]
        )
        matches = detector.process_cell_ids(stream)
        matched = {m.qid for m in matches}
        assert matched == {0}
        # Version A's matches reach high similarity.
        assert max(m.similarity for m in matches) > 0.9

    def test_both_versions_airing_back_to_back(self, rng):
        version_a = np.arange(1000, 1060)
        version_b = np.concatenate(
            [np.arange(1030, 1060), np.arange(5000, 5030)]
        )
        detector = _detector(
            {0: version_a, 1: version_b}, {0: 60, 1: 60}, threshold=0.6
        )
        stream = np.concatenate(
            [rng.integers(100_000, 900_000, size=50),
             version_a, version_b,
             rng.integers(100_000, 900_000, size=50)]
        )
        matches = detector.process_cell_ids(stream)
        assert {m.qid for m in matches} == {0, 1}


class TestDuplicateSubscription:
    def test_identical_queries_both_fire(self, rng):
        """Two subscribers monitoring the same content both get alerts."""
        content = np.arange(1000, 1060)
        detector = _detector(
            {0: content, 1: content.copy()}, {0: 60, 1: 60}, threshold=0.7
        )
        stream = np.concatenate(
            [rng.integers(100_000, 900_000, size=50), content,
             rng.integers(100_000, 900_000, size=50)]
        )
        matches = detector.process_cell_ids(stream)
        assert {m.qid for m in matches} == {0, 1}
        by_query = {}
        for match in matches:
            by_query.setdefault(match.qid, set()).add(
                (match.start_frame, match.end_frame, round(match.similarity, 9))
            )
        assert by_query[0] == by_query[1]
