"""Tests for the LiveMonitor incremental front end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.gop import encode_video
from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import QuerySet
from repro.errors import DetectionError
from repro.features.pipeline import FingerprintExtractor
from repro.minhash.family import MinHashFamily
from repro.video.synth import ClipSynthesizer

KF_RATE = 1.0


def _detector(query_ids, num_frames, threshold=0.7):
    family = MinHashFamily(num_hashes=128, seed=5)
    queries = QuerySet.from_cell_ids(
        {0: np.asarray(query_ids)}, {0: num_frames}, family
    )
    config = DetectorConfig(
        num_hashes=128, threshold=threshold, window_seconds=10.0
    )
    return StreamingDetector(config, queries, KF_RATE)


def _monitor(query_ids, num_frames, **kwargs):
    return LiveMonitor(
        _detector(query_ids, num_frames, **kwargs), FingerprintExtractor()
    )


class TestBuffering:
    def test_partial_pushes_buffer(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        assert monitor.push_cell_ids(rng.integers(0, 500, size=7)) == []
        assert monitor.pending_frames == 7
        monitor.push_cell_ids(rng.integers(0, 500, size=7))
        assert monitor.pending_frames == 4  # one full window consumed
        assert monitor.frames_consumed == 10

    def test_chunked_equals_oneshot(self, rng):
        copy = np.arange(1000, 1040)
        stream = np.concatenate(
            [rng.integers(100_000, 500_000, size=53), copy,
             rng.integers(100_000, 500_000, size=47)]
        )

        oneshot = _detector(copy, 40)
        expected = {
            (m.qid, m.start_frame, m.end_frame)
            for m in oneshot.process_cell_ids(stream)
        }

        monitor = _monitor(copy, 40)
        got = []
        cursor = 0
        chunk_sizes = [7, 13, 31, 9, 22, 50]
        while cursor < len(stream):
            size = chunk_sizes[len(got) % len(chunk_sizes)]
            got.extend(monitor.push_cell_ids(stream[cursor : cursor + size]))
            cursor += size
        got.extend(monitor.flush())
        assert {(m.qid, m.start_frame, m.end_frame) for m in got} == expected

    def test_flush_processes_tail(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=15))
        assert monitor.pending_frames == 5
        monitor.flush()
        assert monitor.pending_frames == 0

    def test_push_after_flush_rejected(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.flush()
        with pytest.raises(DetectionError):
            monitor.push_cell_ids(rng.integers(0, 500, size=5))

    def test_double_flush_is_noop(self):
        monitor = _monitor(np.arange(1000, 1040), 40)
        assert monitor.flush() == []
        assert monitor.flush() == []

    def test_rejects_bad_shape(self):
        monitor = _monitor(np.arange(1000, 1040), 40)
        with pytest.raises(DetectionError):
            monitor.push_cell_ids(np.zeros((2, 2)))


class TestFrameAccounting:
    def test_frames_consumed_exact_after_flush(self, rng):
        """Regression: a flushed partial tail window must count its true
        frame contribution, not a full ``window_frames``.

        With w=10, a 15-frame stream flushes a 5-frame tail; the old
        ``windows_processed * window_frames`` derivation reported 20.
        """
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=15))
        assert monitor.frames_consumed == 10
        monitor.flush()
        assert monitor.detector.stats.windows_processed == 2
        assert monitor.frames_consumed == 15  # not 2 * 10 == 20

    def test_frames_consumed_plus_pending_is_total(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        total = 0
        for size in (3, 17, 8, 25, 4):
            monitor.push_cell_ids(rng.integers(0, 500, size=size))
            total += size
            assert monitor.frames_consumed + monitor.pending_frames == total
        monitor.flush()
        assert monitor.frames_consumed == total
        assert monitor.pending_frames == 0

    def test_partial_windows_counter_set_by_flush(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=12))
        assert monitor.detector.stats.partial_windows == 0
        monitor.flush()
        assert monitor.detector.stats.partial_windows == 1


class TestInputAdapters:
    def test_push_frames_detects_copy(self):
        synth = ClipSynthesizer(seed=31)
        clip = synth.generate_clip(30.0, label="content", fps=2.0)
        extractor = FingerprintExtractor()
        query_ids = extractor.cell_ids_from_clip(clip)

        detector = _detector(query_ids, clip.num_frames, threshold=0.6)
        monitor = LiveMonitor(detector, extractor)
        filler = synth.generate_clip(40.0, label="filler", fps=2.0)
        matches = []
        matches += monitor.push_frames(filler)
        matches += monitor.push_frames(clip)
        matches += monitor.push_frames(
            synth.generate_clip(40.0, label="tail", fps=2.0)
        )
        matches += monitor.flush()
        assert matches

    def test_push_encoded_detects_copy(self):
        synth = ClipSynthesizer(seed=32)
        clip = synth.generate_clip(20.0, label="content", fps=2.0)
        extractor = FingerprintExtractor()
        encoded_query = encode_video(
            clip.frames, fps=clip.fps, quality=90, gop_size=1
        )
        query_ids = extractor.cell_ids_from_encoded(encoded_query)

        detector = _detector(query_ids, clip.num_frames, threshold=0.6)
        monitor = LiveMonitor(detector, extractor)
        filler = synth.generate_clip(30.0, label="filler", fps=2.0)
        matches = []
        matches += monitor.push_encoded(
            encode_video(filler.frames, fps=filler.fps, quality=80, gop_size=1)
        )
        # The copy arrives re-compressed at a different quality.
        matches += monitor.push_encoded(
            encode_video(clip.frames, fps=clip.fps, quality=70, gop_size=1)
        )
        matches += monitor.flush()
        assert matches

    def test_push_clip_object(self):
        synth = ClipSynthesizer(seed=33)
        clip = synth.generate_clip(10.0, label="c", fps=2.0)
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_frames(clip)  # accepted, no crash
        assert monitor.frames_consumed + monitor.pending_frames == clip.num_frames


class TestSkipFrames:
    """skip_frames keeps the window clock honest across decode gaps."""

    def test_whole_window_gap_on_boundary(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=10))
        monitor.skip_frames(20)  # exactly two windows
        stats = monitor.detector.stats
        assert stats.windows_skipped == 2
        assert stats.frames_skipped == 20
        assert monitor.skip_remaining == 0
        assert monitor.frames_consumed == 30  # clock includes the gap
        monitor.push_cell_ids(rng.integers(0, 500, size=10))
        assert stats.windows_processed == 4
        assert monitor.frames_consumed == 40

    def test_gap_ending_mid_window_drops_arrivals(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=7))  # pending 7
        monitor.skip_frames(4)  # gap covers frames 7..10
        stats = monitor.detector.stats
        # The partial window (7 pending) is sacrificed with the gap's
        # window: clock jumps to the next boundary past frame 11.
        assert monitor.pending_frames == 0
        assert stats.windows_skipped == 2
        assert stats.frames_skipped == 11  # 4 gap + 7 sacrificed pending
        assert monitor.skip_remaining == 9  # frames 11..19 drop on arrival
        monitor.push_cell_ids(rng.integers(0, 500, size=12))
        assert monitor.skip_remaining == 0
        assert monitor.pending_frames == 3
        assert stats.frames_skipped == 20

    def test_consecutive_gaps_merge(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=7))
        monitor.skip_frames(4)
        assert monitor.skip_remaining == 9
        monitor.skip_frames(2)  # still inside the sacrificed window
        assert monitor.skip_remaining == 7
        assert monitor.detector.stats.windows_skipped == 2  # no new window

    def test_zero_is_noop_and_negative_rejected(self):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.skip_frames(0)
        assert monitor.detector.stats.frames_skipped == 0
        with pytest.raises(DetectionError):
            monitor.skip_frames(-1)

    def test_skip_after_flush_rejected(self):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.flush()
        with pytest.raises(DetectionError):
            monitor.skip_frames(3)

    def test_flush_with_gap_pending_is_legal(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=10))
        monitor.skip_frames(5)
        assert monitor.skip_remaining == 5
        assert monitor.flush() == []
        assert monitor.skip_remaining == 0

    def test_gap_preserves_later_match_positions(self, rng):
        """A stream with an acknowledged gap produces the same matches,
        at the same absolute frame positions, as the full stream — minus
        any matches inside the sacrificed windows."""
        copy = np.arange(1000, 1010)
        head = rng.integers(100_000, 500_000, size=10)
        lost = rng.integers(100_000, 500_000, size=10)
        tail = rng.integers(100_000, 500_000, size=10)

        full = _monitor(copy, 10, threshold=0.6)
        complete = []
        complete += full.push_cell_ids(np.concatenate([head, lost, copy]))
        complete += full.push_cell_ids(tail)
        complete += full.flush()

        gapped = _monitor(copy, 10, threshold=0.6)
        observed = []
        observed += gapped.push_cell_ids(head)
        gapped.skip_frames(10)  # the 'lost' window never arrives
        observed += gapped.push_cell_ids(copy)
        observed += gapped.push_cell_ids(tail)
        observed += gapped.flush()

        keyed = lambda ms: {(m.qid, m.start_frame, m.end_frame) for m in ms}
        assert keyed(complete) & keyed(observed) == keyed(observed)
        # The copy window itself (frames 20..29) must survive the gap.
        assert any(m.start_frame == 20 for m in observed)

    def test_acknowledge_gap_rejected_after_partial_window(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=5))
        monitor.flush()  # processes a 5-frame partial window
        with pytest.raises(DetectionError):
            monitor.detector.acknowledge_gap(1)


class TestBufferRoundTrip:
    """buffer_state()/restore_buffer() must reproduce the monitor exactly
    (the serving and ingest checkpoints depend on it)."""

    def _clone(self, monitor, query_ids=(0,), num_frames=40):
        fresh = _monitor(np.arange(1000, 1040), 40)
        pending, flushed, skip = monitor.buffer_state()
        fresh.restore_buffer(pending, flushed, skip)
        return fresh

    def test_pending_round_trip(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        chunk = rng.integers(0, 500, size=7)
        monitor.push_cell_ids(chunk)
        pending, flushed, skip = monitor.buffer_state()
        np.testing.assert_array_equal(pending, chunk)
        assert not flushed and skip == 0

    def test_skip_remaining_round_trip(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=7))
        monitor.skip_frames(4)
        restored = self._clone(monitor)
        assert restored.skip_remaining == monitor.skip_remaining
        assert restored.pending_frames == 0

    def test_flushed_round_trip_rejects_pushes(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=3))
        monitor.flush()
        restored = self._clone(monitor)
        with pytest.raises(DetectionError):
            restored.push_cell_ids(rng.integers(0, 500, size=3))
        assert restored.flush() == []  # idempotent after restore too

    def test_corrupt_snapshot_rejected(self):
        monitor = _monitor(np.arange(1000, 1040), 40)
        with pytest.raises(DetectionError):
            monitor.restore_buffer(np.arange(3), False, skip_remaining=2)
        with pytest.raises(DetectionError):
            monitor.restore_buffer(np.empty(0), False, skip_remaining=-1)

    def test_restored_monitor_continues_identically(self, rng):
        copy = np.arange(1000, 1010)
        stream = np.concatenate(
            [rng.integers(100_000, 500_000, size=17), copy,
             rng.integers(100_000, 500_000, size=13)]
        )
        reference = _monitor(copy, 10, threshold=0.6)
        expected = list(reference.push_cell_ids(stream))
        expected += reference.flush()

        first = _monitor(copy, 10, threshold=0.6)
        collected = list(first.push_cell_ids(stream[:17]))
        # Rebuild a monitor around a detector that replays the same
        # prefix, then splice in the buffered tail.
        second = _monitor(copy, 10, threshold=0.6)
        second.detector.process_cell_ids(stream[:10])
        pending, flushed, skip = first.buffer_state()
        second.restore_buffer(pending, flushed, skip)
        collected += second.push_cell_ids(stream[17:])
        collected += second.flush()
        keyed = lambda ms: [(m.qid, m.start_frame, m.end_frame) for m in ms]
        assert keyed(collected) == keyed(expected)
