"""Tests for the LiveMonitor incremental front end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.gop import encode_video
from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import QuerySet
from repro.errors import DetectionError
from repro.features.pipeline import FingerprintExtractor
from repro.minhash.family import MinHashFamily
from repro.video.synth import ClipSynthesizer

KF_RATE = 1.0


def _detector(query_ids, num_frames, threshold=0.7):
    family = MinHashFamily(num_hashes=128, seed=5)
    queries = QuerySet.from_cell_ids(
        {0: np.asarray(query_ids)}, {0: num_frames}, family
    )
    config = DetectorConfig(
        num_hashes=128, threshold=threshold, window_seconds=10.0
    )
    return StreamingDetector(config, queries, KF_RATE)


def _monitor(query_ids, num_frames, **kwargs):
    return LiveMonitor(
        _detector(query_ids, num_frames, **kwargs), FingerprintExtractor()
    )


class TestBuffering:
    def test_partial_pushes_buffer(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        assert monitor.push_cell_ids(rng.integers(0, 500, size=7)) == []
        assert monitor.pending_frames == 7
        monitor.push_cell_ids(rng.integers(0, 500, size=7))
        assert monitor.pending_frames == 4  # one full window consumed
        assert monitor.frames_consumed == 10

    def test_chunked_equals_oneshot(self, rng):
        copy = np.arange(1000, 1040)
        stream = np.concatenate(
            [rng.integers(100_000, 500_000, size=53), copy,
             rng.integers(100_000, 500_000, size=47)]
        )

        oneshot = _detector(copy, 40)
        expected = {
            (m.qid, m.start_frame, m.end_frame)
            for m in oneshot.process_cell_ids(stream)
        }

        monitor = _monitor(copy, 40)
        got = []
        cursor = 0
        chunk_sizes = [7, 13, 31, 9, 22, 50]
        while cursor < len(stream):
            size = chunk_sizes[len(got) % len(chunk_sizes)]
            got.extend(monitor.push_cell_ids(stream[cursor : cursor + size]))
            cursor += size
        got.extend(monitor.flush())
        assert {(m.qid, m.start_frame, m.end_frame) for m in got} == expected

    def test_flush_processes_tail(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=15))
        assert monitor.pending_frames == 5
        monitor.flush()
        assert monitor.pending_frames == 0

    def test_push_after_flush_rejected(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.flush()
        with pytest.raises(DetectionError):
            monitor.push_cell_ids(rng.integers(0, 500, size=5))

    def test_double_flush_is_noop(self):
        monitor = _monitor(np.arange(1000, 1040), 40)
        assert monitor.flush() == []
        assert monitor.flush() == []

    def test_rejects_bad_shape(self):
        monitor = _monitor(np.arange(1000, 1040), 40)
        with pytest.raises(DetectionError):
            monitor.push_cell_ids(np.zeros((2, 2)))


class TestFrameAccounting:
    def test_frames_consumed_exact_after_flush(self, rng):
        """Regression: a flushed partial tail window must count its true
        frame contribution, not a full ``window_frames``.

        With w=10, a 15-frame stream flushes a 5-frame tail; the old
        ``windows_processed * window_frames`` derivation reported 20.
        """
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=15))
        assert monitor.frames_consumed == 10
        monitor.flush()
        assert monitor.detector.stats.windows_processed == 2
        assert monitor.frames_consumed == 15  # not 2 * 10 == 20

    def test_frames_consumed_plus_pending_is_total(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        total = 0
        for size in (3, 17, 8, 25, 4):
            monitor.push_cell_ids(rng.integers(0, 500, size=size))
            total += size
            assert monitor.frames_consumed + monitor.pending_frames == total
        monitor.flush()
        assert monitor.frames_consumed == total
        assert monitor.pending_frames == 0

    def test_partial_windows_counter_set_by_flush(self, rng):
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_cell_ids(rng.integers(0, 500, size=12))
        assert monitor.detector.stats.partial_windows == 0
        monitor.flush()
        assert monitor.detector.stats.partial_windows == 1


class TestInputAdapters:
    def test_push_frames_detects_copy(self):
        synth = ClipSynthesizer(seed=31)
        clip = synth.generate_clip(30.0, label="content", fps=2.0)
        extractor = FingerprintExtractor()
        query_ids = extractor.cell_ids_from_clip(clip)

        detector = _detector(query_ids, clip.num_frames, threshold=0.6)
        monitor = LiveMonitor(detector, extractor)
        filler = synth.generate_clip(40.0, label="filler", fps=2.0)
        matches = []
        matches += monitor.push_frames(filler)
        matches += monitor.push_frames(clip)
        matches += monitor.push_frames(
            synth.generate_clip(40.0, label="tail", fps=2.0)
        )
        matches += monitor.flush()
        assert matches

    def test_push_encoded_detects_copy(self):
        synth = ClipSynthesizer(seed=32)
        clip = synth.generate_clip(20.0, label="content", fps=2.0)
        extractor = FingerprintExtractor()
        encoded_query = encode_video(
            clip.frames, fps=clip.fps, quality=90, gop_size=1
        )
        query_ids = extractor.cell_ids_from_encoded(encoded_query)

        detector = _detector(query_ids, clip.num_frames, threshold=0.6)
        monitor = LiveMonitor(detector, extractor)
        filler = synth.generate_clip(30.0, label="filler", fps=2.0)
        matches = []
        matches += monitor.push_encoded(
            encode_video(filler.frames, fps=filler.fps, quality=80, gop_size=1)
        )
        # The copy arrives re-compressed at a different quality.
        matches += monitor.push_encoded(
            encode_video(clip.frames, fps=clip.fps, quality=70, gop_size=1)
        )
        matches += monitor.flush()
        assert matches

    def test_push_clip_object(self):
        synth = ClipSynthesizer(seed=33)
        clip = synth.generate_clip(10.0, label="c", fps=2.0)
        monitor = _monitor(np.arange(1000, 1040), 40)
        monitor.push_frames(clip)  # accepted, no crash
        assert monitor.frames_consumed + monitor.pending_frames == clip.num_frames
