"""Hypothesis property tests over the scoring rule."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.results import Match
from repro.evaluation.metrics import score_matches
from repro.workloads.groundtruth import GroundTruth, Occurrence

STREAM_FRAMES = 1000
W = 10


@st.composite
def _matches(draw):
    count = draw(st.integers(0, 25))
    matches = []
    for _ in range(count):
        qid = draw(st.integers(0, 3))
        start = draw(st.integers(0, STREAM_FRAMES - 20))
        length = draw(st.integers(10, 120))
        end = min(STREAM_FRAMES, start + length)
        matches.append(
            Match(
                qid=qid,
                window_index=end // W,
                start_frame=start,
                end_frame=end,
                similarity=draw(st.floats(0.5, 1.0)),
            )
        )
    return matches


@st.composite
def _ground_truth(draw):
    count = draw(st.integers(1, 6))
    occurrences = []
    cursor = 0
    for _ in range(count):
        gap = draw(st.integers(5, 80))
        length = draw(st.integers(20, 100))
        begin = cursor + gap
        end = begin + length
        if end > STREAM_FRAMES:
            break
        occurrences.append(
            Occurrence(qid=draw(st.integers(0, 3)), begin_frame=begin,
                       end_frame=end)
        )
        cursor = end
    if not occurrences:
        occurrences = [Occurrence(qid=0, begin_frame=10, end_frame=50)]
    return GroundTruth(occurrences, STREAM_FRAMES)


@settings(max_examples=60, deadline=None)
@given(matches=_matches(), ground_truth=_ground_truth())
def test_score_invariants(matches, ground_truth):
    result = score_matches(matches, ground_truth, W)
    assert 0.0 <= result.precision <= 1.0
    assert 0.0 <= result.recall <= 1.0
    assert 0.0 <= result.f1 <= 1.0
    assert result.num_matches == len(matches)
    assert result.num_correct_detections <= result.num_detections
    assert result.num_detected_occurrences <= result.num_occurrences
    assert result.num_occurrences == len(ground_truth)
    if not matches:
        assert result.precision == 1.0 and result.recall == 0.0
    # Detections never exceed matches (merging only reduces).
    assert result.num_detections <= len(matches)


@settings(max_examples=40, deadline=None)
@given(matches=_matches(), ground_truth=_ground_truth())
def test_adding_perfect_matches_never_hurts_recall(matches, ground_truth):
    baseline = score_matches(matches, ground_truth, W)
    boosted = list(matches)
    for occurrence in ground_truth:
        boosted.append(
            Match(
                qid=occurrence.qid,
                window_index=occurrence.end_frame // W,
                start_frame=occurrence.begin_frame,
                end_frame=occurrence.end_frame + W,
                similarity=1.0,
            )
        )
    result = score_matches(boosted, ground_truth, W)
    assert result.recall >= baseline.recall
    assert result.recall == 1.0


@settings(max_examples=40, deadline=None)
@given(ground_truth=_ground_truth(), seed=st.integers(0, 10_000))
def test_pure_noise_matches_rarely_count_as_correct(ground_truth, seed):
    """Matches for a query with no occurrences are always false."""
    rng = np.random.default_rng(seed)
    noise = [
        Match(
            qid=99,  # a query that never aired
            window_index=0,
            start_frame=int(rng.integers(0, 900)),
            end_frame=int(rng.integers(900, 1000)),
            similarity=0.9,
        )
        for _ in range(5)
    ]
    result = score_matches(noise, ground_truth, W)
    assert result.num_correct_detections == 0
    assert result.precision == 0.0
    assert result.recall == 0.0
