"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.evaluation.ascii_chart import render_chart


class TestRenderChart:
    def test_basic_structure(self):
        chart = render_chart(
            {"a": [1.0, 2.0, 3.0]},
            [10, 20, 30],
            height=6,
            width=30,
            title="T",
            y_label="y",
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 6 + 1 + 1 + 1  # title, rows, axis, ticks, legend
        assert "o=a" in lines[-1]

    def test_extremes_on_border_rows(self):
        chart = render_chart({"a": [0.0, 10.0]}, [1, 2], height=5, width=20)
        lines = chart.splitlines()
        assert "o" in lines[0]      # max on the top row
        assert "o" in lines[4]      # min on the bottom row

    def test_y_labels(self):
        chart = render_chart({"a": [0.0, 10.0]}, [1, 2], height=5, width=20)
        assert "10" in chart.splitlines()[0]
        assert "0" in chart.splitlines()[4]

    def test_multiple_series_glyphs(self):
        chart = render_chart(
            {"fast": [1, 1], "slow": [2, 2]}, [1, 2], height=4, width=20
        )
        assert "o=fast" in chart and "x=slow" in chart
        body = "\n".join(chart.splitlines()[:-1])
        assert "o" in body and "x" in body

    def test_collision_marker(self):
        chart = render_chart(
            {"a": [1.0, 2.0], "b": [1.0, 9.0]}, [1, 2], height=6, width=20
        )
        assert "*" in chart  # both series share the first point

    def test_flat_series(self):
        chart = render_chart({"a": [5.0, 5.0, 5.0]}, [1, 2, 3])
        assert "o" in chart

    def test_single_point(self):
        chart = render_chart({"a": [3.0]}, [7], height=4, width=12)
        assert "7" in chart

    def test_x_ticks_present(self):
        chart = render_chart({"a": [1, 2, 3]}, [100, 400, 1600], width=40)
        ticks = chart.splitlines()[-2]
        assert "100" in ticks and "1600" in ticks

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_chart({}, [1])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            render_chart({"a": [1, 2]}, [1, 2, 3])

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            render_chart({"a": [1, 2, 3]}, [1, 2, 3], width=2)

    def test_rejects_too_many_series(self):
        series = {f"s{i}": [1.0] for i in range(9)}
        with pytest.raises(ValueError):
            render_chart(series, [1])
