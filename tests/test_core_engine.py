"""Engine tests on controlled synthetic cell-id streams.

These tests bypass the video substrate entirely: queries and streams are
hand-built integer sequences, so detection behaviour can be asserted
exactly — including the strong invariant that all four engine variants
(Sketch/Bit x Index/NoIndex) report the *identical* match set for a given
combination order, because the bit signature is a lossless encoding of
the sketch comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.core.detector import StreamingDetector
from repro.core.query import QuerySet
from repro.errors import DetectionError
from repro.minhash.family import MinHashFamily

KF_RATE = 1.0  # one key frame per second: window_seconds == window_frames


def _make_queries(family, specs):
    """specs: {qid: (id_low, id_high, num_frames)}."""
    cell_ids = {
        qid: np.arange(low, high) for qid, (low, high, _frames) in specs.items()
    }
    frames = {qid: frames for qid, (_l, _h, frames) in specs.items()}
    return QuerySet.from_cell_ids(cell_ids, frames, family)


def _filler(rng, length, low=100_000, high=500_000):
    """Filler ids far away from any query's id range."""
    return rng.integers(low, high, size=length)


def _stream_with_copy(rng, query_ids, before=60, after=60):
    """Filler + the query's id sequence + filler; returns (ids, begin, end)."""
    head = _filler(rng, before)
    tail = _filler(rng, after)
    ids = np.concatenate([head, query_ids, tail])
    return ids, before, before + len(query_ids)


def _config(**overrides):
    defaults = dict(
        num_hashes=128,
        threshold=0.7,
        window_seconds=10.0,
        tempo_scale=2.0,
        order=CombinationOrder.SEQUENTIAL,
        representation=Representation.BIT,
        use_index=True,
        prune=True,
    )
    defaults.update(overrides)
    return DetectorConfig(**defaults)


@pytest.fixture()
def wide_family():
    return MinHashFamily(num_hashes=128, seed=11)


class TestDetectionBasics:
    def test_detects_exact_copy(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        ids, begin, end = _stream_with_copy(rng, np.arange(1000, 1040))
        detector = StreamingDetector(_config(), queries, KF_RATE)
        matches = detector.process_cell_ids(ids)
        assert matches, "an exact copy must be detected"
        positions = [m.position_frame for m in matches]
        w = detector.window_frames
        assert any(begin + w <= p <= end + w for p in positions)

    def test_no_false_positives_on_pure_filler(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        detector = StreamingDetector(_config(), queries, KF_RATE)
        matches = detector.process_cell_ids(_filler(rng, 300))
        assert matches == []

    def test_detects_reordered_copy(self, wide_family, rng):
        """The headline robustness: shuffled frames still match."""
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        shuffled = rng.permutation(np.arange(1000, 1040))
        ids, begin, end = _stream_with_copy(rng, shuffled)
        detector = StreamingDetector(_config(), queries, KF_RATE)
        matches = detector.process_cell_ids(ids)
        assert matches
        w = detector.window_frames
        assert any(begin + w <= m.position_frame <= end + w for m in matches)

    def test_detects_partially_corrupted_copy(self, wide_family, rng):
        """~85 % of ids intact clears δ=0.7 (Jaccard ≈ 0.74)."""
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        corrupted = np.arange(1000, 1040)
        corrupted[::7] = rng.integers(700_000, 800_000, size=len(corrupted[::7]))
        ids, _b, _e = _stream_with_copy(rng, corrupted)
        detector = StreamingDetector(_config(threshold=0.6), queries, KF_RATE)
        assert detector.process_cell_ids(ids)

    def test_misses_mostly_different_sequence(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        decoy = np.arange(1000, 1040)
        decoy[::2] = rng.integers(700_000, 800_000, size=len(decoy[::2]))
        ids, _b, _e = _stream_with_copy(rng, decoy)
        detector = StreamingDetector(_config(), queries, KF_RATE)
        # Jaccard ~ 0.33 << 0.7.
        assert detector.process_cell_ids(ids) == []

    def test_multiple_queries_independent(self, wide_family, rng):
        queries = _make_queries(
            wide_family, {0: (1000, 1040, 40), 1: (2000, 2030, 30), 2: (3000, 3050, 50)}
        )
        ids0, b0, e0 = _stream_with_copy(rng, np.arange(2000, 2030), before=40, after=0)
        tail = _filler(rng, 50)
        ids = np.concatenate([ids0, tail])
        detector = StreamingDetector(_config(), queries, KF_RATE)
        matches = detector.process_cell_ids(ids)
        matched_qids = {m.qid for m in matches}
        assert matched_qids == {1}

    def test_two_copies_both_found(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        copy = np.arange(1000, 1040)
        ids = np.concatenate(
            [_filler(rng, 50), copy, _filler(rng, 80), copy, _filler(rng, 50)]
        )
        detector = StreamingDetector(_config(), queries, KF_RATE)
        matches = detector.process_cell_ids(ids)
        w = detector.window_frames
        first_span = (50 + w, 90 + w)
        second_span = (170 + w, 210 + w)
        assert any(first_span[0] <= m.position_frame <= first_span[1] for m in matches)
        assert any(second_span[0] <= m.position_frame <= second_span[1] for m in matches)


class TestVariantEquivalence:
    """Agreement guarantees across the four engine variants.

    Without the index the bit signature is a *lossless* re-encoding of
    the sketch comparison, so Bit-NoIndex reports exactly the Sketch
    match set. With the index, a candidate adopts a query at its first
    *related* window (Section V-B), which re-bases some signatures onto
    the matching suffix — every reported (query, end-position) pair is
    still shared with the suffix candidates the other variants score, so
    the scored outcome is identical; under the Sequential order the
    report-position sets coincide exactly for all variants.
    """

    def _run(self, ids, order, representation, use_index, prune=True):
        family = MinHashFamily(num_hashes=128, seed=11)
        queries = _make_queries(
            family, {0: (1000, 1080, 80), 1: (2000, 2035, 35)}
        )
        config = _config(
            order=order,
            representation=representation,
            use_index=use_index,
            prune=prune,
            threshold=0.55,
        )
        detector = StreamingDetector(config, queries, KF_RATE)
        return detector.process_cell_ids(ids)

    def test_sequential_positions_identical(self, rng):
        copy = np.arange(1000, 1080)
        ids = np.concatenate([_filler(rng, 60), copy, _filler(rng, 60)])
        outcomes = {}
        for representation in Representation:
            for use_index in (True, False):
                matches = self._run(
                    ids, CombinationOrder.SEQUENTIAL, representation, use_index
                )
                outcomes[(representation, use_index)] = {
                    (m.qid, m.end_frame) for m in matches
                }
        baseline = outcomes[(Representation.BIT, True)]
        assert baseline, "sanity: the copy must be detected"
        for key, positions in outcomes.items():
            assert positions == baseline, f"variant {key} diverged"

    def test_bit_noindex_is_lossless(self, rng):
        """Without the index, Bit and Sketch agree match-for-match."""
        copy = np.arange(1000, 1080)
        ids = np.concatenate([_filler(rng, 60), copy, _filler(rng, 60)])
        for order in CombinationOrder:
            bit = self._run(ids, order, Representation.BIT, False, prune=False)
            sketch = self._run(ids, order, Representation.SKETCH, False)
            view = lambda ms: {
                (m.qid, m.start_frame, m.end_frame, round(m.similarity, 9))
                for m in ms
            }
            assert view(bit) == view(sketch)

    def test_geometric_index_positions_superset(self, rng):
        """Geometric Bit-Index may add suffix-rebased positions but never
        loses one the other variants report."""
        copy = np.arange(1000, 1080)
        ids = np.concatenate([_filler(rng, 60), copy, _filler(rng, 60)])
        positions = {}
        for representation in Representation:
            for use_index in (True, False):
                matches = self._run(
                    ids, CombinationOrder.GEOMETRIC, representation, use_index
                )
                positions[(representation, use_index)] = {
                    (m.qid, m.end_frame) for m in matches
                }
        base = positions[(Representation.SKETCH, True)]
        assert base, "sanity: the copy must be detected"
        assert positions[(Representation.SKETCH, False)] == base
        assert positions[(Representation.BIT, False)] == base
        assert positions[(Representation.BIT, True)] >= base

    def test_geometric_matches_subset_of_sequential(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        copy = np.arange(1000, 1040)
        ids = np.concatenate([_filler(rng, 50), copy, _filler(rng, 50)])

        def run(order):
            family = MinHashFamily(num_hashes=128, seed=11)
            qs = _make_queries(family, {0: (1000, 1040, 40)})
            detector = StreamingDetector(_config(order=order), qs, KF_RATE)
            return {
                (m.qid, m.start_frame, m.end_frame)
                for m in detector.process_cell_ids(ids)
            }

        sequential = run(CombinationOrder.SEQUENTIAL)
        geometric = run(CombinationOrder.GEOMETRIC)
        assert geometric <= sequential


class TestPruning:
    def test_pruning_preserves_matches(self, wide_family, rng):
        """Lemma 2 soundness: pruning never loses a report position —
        any window inside a δ-matching candidate satisfies the bound
        itself, so it is never dropped from the payload."""
        copy = np.arange(1000, 1040)
        ids = np.concatenate([_filler(rng, 50), copy, _filler(rng, 50)])

        def run(prune):
            family = MinHashFamily(num_hashes=128, seed=11)
            queries = _make_queries(family, {0: (1000, 1040, 40)})
            detector = StreamingDetector(
                _config(prune=prune, use_index=False), queries, KF_RATE
            )
            matches = detector.process_cell_ids(ids)
            return (
                {(m.qid, m.end_frame) for m in matches},
                detector.stats.avg_signatures,
            )

        pruned_matches, pruned_sigs = run(True)
        unpruned_matches, unpruned_sigs = run(False)
        assert pruned_matches == unpruned_matches
        assert pruned_sigs < unpruned_sigs

    def test_pruning_counts_recorded(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        detector = StreamingDetector(
            _config(use_index=False), queries, KF_RATE
        )
        detector.process_cell_ids(_filler(rng, 200))
        assert detector.stats.signature_prunes > 0


class TestExpiry:
    def test_candidates_bounded_by_lambda_l(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        detector = StreamingDetector(_config(), queries, KF_RATE)
        detector.process_cell_ids(_filler(rng, 500))
        cap = detector.context.global_max_windows
        engine = detector.engine
        assert all(c.num_windows <= cap for c in engine.candidates)
        assert detector.stats.expired_candidates > 0

    def test_geometric_total_size_bounded(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        detector = StreamingDetector(
            _config(order=CombinationOrder.GEOMETRIC), queries, KF_RATE
        )
        detector.process_cell_ids(_filler(rng, 500))
        total = sum(s.size for s in detector.engine.segments)
        assert total <= detector.context.global_max_windows


class TestCostModel:
    """Eq. (4): combinations per window scale with the order's model."""

    def test_sequential_combines_linear_in_cap(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        detector = StreamingDetector(
            _config(representation=Representation.SKETCH), queries, KF_RATE
        )
        detector.process_cell_ids(_filler(rng, 400))
        per_window = (
            detector.stats.sketch_combines / detector.stats.windows_processed
        )
        cap = detector.context.global_max_windows
        assert cap - 2 <= per_window <= cap

    def test_geometric_combines_logarithmic(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        detector = StreamingDetector(
            _config(
                order=CombinationOrder.GEOMETRIC,
                representation=Representation.SKETCH,
            ),
            queries,
            KF_RATE,
        )
        detector.process_cell_ids(_filler(rng, 400))
        per_window = (
            detector.stats.sketch_combines / detector.stats.windows_processed
        )
        cap = detector.context.global_max_windows
        assert per_window < cap / 2
        assert per_window <= 2 * (np.log2(cap) + 2)

    def test_window_count(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        detector = StreamingDetector(_config(), queries, KF_RATE)
        detector.process_cell_ids(_filler(rng, 95))
        assert detector.stats.windows_processed == 10  # ceil(95/10)


class TestOnlineMaintenance:
    def test_subscribe_mid_stream(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (9000, 9030, 30)})
        detector = StreamingDetector(_config(), queries, KF_RATE)
        detector.process_cell_ids(_filler(rng, 100))

        from repro.core.query import Query

        new_ids = np.arange(1000, 1040)
        new_query = Query(
            qid=5,
            cell_ids=new_ids,
            num_frames=40,
            sketch=wide_family.sketch(new_ids),
        )
        detector.subscribe(new_query)
        copy_stream = np.concatenate([new_ids, _filler(rng, 60)])
        matches = detector.process_cell_ids(copy_stream)
        assert any(m.qid == 5 for m in matches)

    def test_unsubscribe_stops_matching(self, wide_family, rng):
        queries = _make_queries(
            wide_family, {0: (1000, 1040, 40), 1: (2000, 2030, 30)}
        )
        detector = StreamingDetector(_config(), queries, KF_RATE)
        detector.process_cell_ids(_filler(rng, 50))
        detector.unsubscribe(0)
        copy_stream = np.concatenate([np.arange(1000, 1040), _filler(rng, 60)])
        matches = detector.process_cell_ids(copy_stream)
        assert not any(m.qid == 0 for m in matches)

    def test_unsubscribe_unknown_rejected(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        detector = StreamingDetector(_config(), queries, KF_RATE)
        with pytest.raises(DetectionError):
            detector.unsubscribe(42)


class TestDetectorValidation:
    def test_rejects_bad_kf_rate(self, wide_family):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        with pytest.raises(DetectionError):
            StreamingDetector(_config(), queries, 0.0)

    def test_stats_accessible(self, wide_family, rng):
        queries = _make_queries(wide_family, {0: (1000, 1040, 40)})
        detector = StreamingDetector(_config(), queries, KF_RATE)
        detector.process_cell_ids(_filler(rng, 30))
        summary = detector.stats.summary()
        assert "windows=3" in summary

    def test_chunked_processing_equals_single_pass(self, wide_family, rng):
        copy = np.arange(1000, 1040)
        ids = np.concatenate([_filler(rng, 60), copy, _filler(rng, 60)])

        def run(chunks):
            family = MinHashFamily(num_hashes=128, seed=11)
            queries = _make_queries(family, {0: (1000, 1040, 40)})
            detector = StreamingDetector(_config(), queries, KF_RATE)
            matches = []
            for chunk in chunks:
                matches.extend(detector.process_cell_ids(chunk))
            return {(m.qid, m.start_frame, m.end_frame) for m in matches}

        whole = run([ids])
        # Chunk boundary aligned to whole windows (window_frames = 10).
        halves = run([ids[:80], ids[80:]])
        assert whole == halves
