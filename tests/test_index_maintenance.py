"""Online HQ-index maintenance: interleaved insert/remove fuzzing.

The paper's Hash-Query index supports online subscription (§V-C): rows
of ⟨value, up, down⟩ triples that are patched in place on insert and
remove. These tests interleave inserts and removes — with colliding
sketch values, duplicate-value columns, and remove-then-reinsert of the
same qid — and require the incrementally maintained index to stay
(a) structurally valid (``check_invariants``) and (b) semantically
identical to an index rebuilt from scratch over the surviving queries
(``canonical_state``: per-qid sketch down-walks and lengths), with
every up/down walk resolving to the right query.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.index.hq import HashQueryIndex
from repro.minhash.family import MinHashFamily

NUM_HASHES = 8
CELL_SPACE = 30  # tiny id space => frequent min-hash value collisions


def _sketch(family, rng):
    cells = np.unique(rng.integers(0, CELL_SPACE, size=rng.integers(3, 12)))
    return family.sketch(cells)


def _rebuilt(family, live):
    return HashQueryIndex.build(
        {qid: sketch for qid, (sketch, _) in live.items()},
        {qid: length for qid, (_, length) in live.items()},
    )


def _assert_equivalent(index, family, live):
    index.check_invariants()
    if not live:
        return
    rebuilt = _rebuilt(family, live)
    rebuilt.check_invariants()
    assert index.canonical_state() == rebuilt.canonical_state()
    # Every bottom-row column walks up to the column of its own query.
    index.warm_caches()
    for qid in live:
        column = index.last_row_column_of(qid)
        assert index.query_of_column(NUM_HASHES - 1, column).qid == qid


@pytest.mark.parametrize("seed", range(40))
def test_fuzz_interleaved_insert_remove(seed):
    rng = np.random.default_rng(seed)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=seed % 5)
    live = {}
    removed = {}
    next_qid = 0
    for _ in range(6):
        sketch = _sketch(family, rng)
        live[next_qid] = (sketch, int(rng.integers(1, 12)))
        next_qid += 1
    index = _rebuilt(family, live)

    for _ in range(60):
        op = rng.integers(0, 3)
        if op == 0 or len(live) < 2:
            sketch = _sketch(family, rng)
            length = int(rng.integers(1, 12))
            index.insert(next_qid, sketch, length)
            live[next_qid] = (sketch, length)
            next_qid += 1
        elif op == 1:
            victim = int(rng.choice(sorted(live)))
            index.remove(victim)
            removed[victim] = live.pop(victim)
        elif removed:
            # Remove-then-reinsert of the same qid, same sketch — the
            # historically bug-prone pointer-patching path.
            qid = int(rng.choice(sorted(removed)))
            sketch, length = removed.pop(qid)
            index.insert(qid, sketch, length)
            live[qid] = (sketch, length)
        _assert_equivalent(index, family, live)


def test_remove_reinsert_same_qid_round_trips():
    rng = np.random.default_rng(2008)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=1)
    live = {qid: (_sketch(family, rng), qid + 1) for qid in range(5)}
    index = _rebuilt(family, live)
    before = index.canonical_state()
    for qid in (2, 0, 4):
        sketch, length = live[qid]
        index.remove(qid)
        index.check_invariants()
        index.insert(qid, sketch, length)
        _assert_equivalent(index, family, live)
    assert index.canonical_state() == before


def test_duplicate_qid_insert_rejected():
    rng = np.random.default_rng(3)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=0)
    live = {0: (_sketch(family, rng), 4)}
    index = _rebuilt(family, live)
    with pytest.raises(IndexError_):
        index.insert(0, _sketch(family, rng), 4)


def test_remove_unknown_qid_rejected():
    rng = np.random.default_rng(4)
    family = MinHashFamily(num_hashes=NUM_HASHES, seed=0)
    index = _rebuilt(family, {0: (_sketch(family, rng), 4)})
    with pytest.raises(IndexError_):
        index.remove(99)
