"""Tests for the clip model, formats and resizing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.clip import VideoClip, concat_clips
from repro.video.formats import NTSC, PAL, VideoFormat
from repro.video.resize import bilinear_resize, bilinear_resize_stack


def _clip(num_frames=10, height=16, width=24, fps=2.0, label="t", seed=0):
    rng = np.random.default_rng(seed)
    frames = rng.uniform(0, 255, size=(num_frames, height, width))
    return VideoClip(frames=frames, fps=fps, label=label)


class TestVideoFormat:
    def test_ntsc_pal_relationship(self):
        assert NTSC.fps == pytest.approx(29.97)
        assert PAL.fps == 25.0
        assert PAL.height > NTSC.height  # PAL has more lines

    def test_rejects_nonpositive(self):
        with pytest.raises(Exception):
            VideoFormat("x", 0, 10, 10)
        with pytest.raises(Exception):
            VideoFormat("x", 10, 10, 0.0)

    def test_scaled_snaps_to_block_multiples(self):
        half = NTSC.scaled(0.5)
        assert half.width % 8 == 0 and half.height % 8 == 0
        assert half.fps == NTSC.fps

    def test_scaled_floor(self):
        tiny = NTSC.scaled(0.01)
        assert tiny.width == 8 and tiny.height == 8

    def test_default_formats_block_aligned(self):
        for fmt in (NTSC, PAL):
            assert fmt.width % 8 == 0 and fmt.height % 8 == 0


class TestVideoClip:
    def test_basic_properties(self):
        clip = _clip(num_frames=10, fps=2.0)
        assert clip.num_frames == 10
        assert len(clip) == 10
        assert clip.duration == pytest.approx(5.0)
        assert clip.height == 16 and clip.width == 24

    def test_rejects_empty(self):
        with pytest.raises(VideoError):
            VideoClip(frames=np.zeros((0, 4, 4)), fps=1.0)

    def test_rejects_bad_ndim(self):
        with pytest.raises(VideoError):
            VideoClip(frames=np.zeros((4, 4)), fps=1.0)

    def test_rejects_bad_fps(self):
        with pytest.raises(VideoError):
            VideoClip(frames=np.zeros((1, 4, 4)), fps=0.0)

    def test_rejects_out_of_range_luminance(self):
        with pytest.raises(VideoError):
            VideoClip(frames=np.full((1, 4, 4), 300.0), fps=1.0)
        with pytest.raises(VideoError):
            VideoClip(frames=np.full((1, 4, 4), -5.0), fps=1.0)

    def test_frame_at(self):
        clip = _clip()
        assert np.array_equal(clip.frame_at(3), clip.frames[3])
        assert np.array_equal(clip.frame_at(-1), clip.frames[-1])

    def test_subclip(self):
        clip = _clip(num_frames=10)
        sub = clip.subclip(2, 5)
        assert sub.num_frames == 3
        assert np.array_equal(sub.frames, clip.frames[2:5])

    def test_subclip_bounds(self):
        clip = _clip(num_frames=10)
        with pytest.raises(VideoError):
            clip.subclip(5, 5)
        with pytest.raises(VideoError):
            clip.subclip(-1, 5)
        with pytest.raises(VideoError):
            clip.subclip(0, 11)

    def test_subclip_is_copy(self):
        clip = _clip()
        sub = clip.subclip(0, 2)
        sub.frames[0, 0, 0] = 0.0
        assert clip.frames[0, 0, 0] != 0.0 or clip.frames[0, 0, 0] == 0.0  # no crash
        assert sub.frames.base is None

    def test_with_label(self):
        clip = _clip(label="a")
        relabeled = clip.with_label("b")
        assert relabeled.label == "b"
        assert relabeled.frames is clip.frames

    def test_repr(self):
        assert "24x16" in repr(_clip())


class TestConcat:
    def test_concat_lengths(self):
        a, b = _clip(num_frames=3, seed=1), _clip(num_frames=4, seed=2)
        merged = concat_clips([a, b], label="m")
        assert merged.num_frames == 7
        assert np.array_equal(merged.frames[:3], a.frames)

    def test_rejects_empty_list(self):
        with pytest.raises(VideoError):
            concat_clips([])

    def test_rejects_size_mismatch(self):
        with pytest.raises(VideoError):
            concat_clips([_clip(), _clip(height=8)])

    def test_rejects_fps_mismatch(self):
        with pytest.raises(VideoError):
            concat_clips([_clip(fps=2.0), _clip(fps=3.0)])


class TestResize:
    def test_identity_resize(self):
        frame = np.random.default_rng(0).uniform(0, 255, size=(16, 24))
        assert np.allclose(bilinear_resize(frame, 16, 24), frame)

    def test_constant_frame_preserved(self):
        frame = np.full((10, 10), 99.0)
        assert np.allclose(bilinear_resize(frame, 17, 23), 99.0)

    def test_mean_roughly_preserved(self):
        frame = np.random.default_rng(1).uniform(0, 255, size=(32, 32))
        resized = bilinear_resize(frame, 48, 48)
        assert resized.mean() == pytest.approx(frame.mean(), rel=0.02)

    def test_gradient_preserved(self):
        frame = np.tile(np.linspace(0, 255, 32), (16, 1))
        resized = bilinear_resize(frame, 16, 64)
        assert (np.diff(resized[0]) >= -1e-9).all()

    def test_downscale_shape(self):
        frame = np.zeros((64, 88))
        assert bilinear_resize(frame, 17, 23).shape == (17, 23)

    def test_stack_matches_single(self):
        rng = np.random.default_rng(2)
        frames = rng.uniform(0, 255, size=(3, 16, 24))
        stacked = bilinear_resize_stack(frames, 20, 30)
        for i in range(3):
            assert np.allclose(stacked[i], bilinear_resize(frames[i], 20, 30))

    def test_rejects_bad_target(self):
        with pytest.raises(VideoError):
            bilinear_resize(np.zeros((4, 4)), 0, 4)

    def test_rejects_bad_ndim(self):
        with pytest.raises(VideoError):
            bilinear_resize(np.zeros((2, 2, 2)), 4, 4)
        with pytest.raises(VideoError):
            bilinear_resize_stack(np.zeros((2, 2)), 4, 4)
