"""SIGTERM/SIGINT handling of the long-running CLI verbs.

Each test launches the real CLI in a subprocess, waits for it to make
progress, sends the signal, and asserts a clean exit: drained at a
chunk boundary, checkpoint written where configured, exit code 0.
"""

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _spawn(*args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", *args],
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _wait_for_line(proc: subprocess.Popen, needle: str, timeout: float):
    """Read stdout lines until one contains ``needle``."""
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                break
            continue
        lines.append(line)
        if needle in line:
            return lines
    raise AssertionError(
        f"never saw {needle!r} within {timeout}s; got: {lines!r} / "
        f"stderr: {proc.stderr.read() if proc.poll() is not None else '?'}"
    )


@pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
def test_serve_signal_drains_and_checkpoints(tmp_path, sig):
    ckpt_dir = tmp_path / "ckpt"
    proc = _spawn(
        "serve",
        "--stream-seconds", "600", "--queries", "4", "--hashes", "16",
        "--workers", "2", "--backend", "thread",
        "--chunk-seconds", "10", "--pace", "0.2",
        "--checkpoint-dir", str(ckpt_dir),
    )
    try:
        # --pace keeps chunks slow enough that the signal lands
        # mid-run; wait for real progress first (startup banner).
        _wait_for_line(proc, "serving", 60)
        time.sleep(1.0)
        proc.send_signal(sig)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, f"stderr: {stderr}"
    assert f"received {signal.Signals(sig).name}, draining" in stdout
    assert "snapshot" in stdout and "--resume" in stdout
    snapshots = list(ckpt_dir.glob("**/*"))
    assert snapshots, "no checkpoint written on signalled exit"


def test_serve_resume_after_sigterm_completes(tmp_path):
    """The checkpoint a signal leaves behind must actually resume."""
    ckpt_dir = tmp_path / "ckpt"
    common = (
        "serve",
        "--stream-seconds", "120", "--queries", "4", "--hashes", "16",
        "--workers", "2", "--backend", "thread",
        "--chunk-seconds", "10",
        "--checkpoint-dir", str(ckpt_dir),
    )
    proc = _spawn(*common, "--pace", "0.2")
    try:
        _wait_for_line(proc, "serving", 60)
        time.sleep(1.0)
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 0, f"stderr: {stderr}"
        resumed = _spawn(*common, "--resume")
        stdout, stderr = resumed.communicate(timeout=300)
        assert resumed.returncode == 0, f"stderr: {stderr}"
        assert "precision" in stdout or "matches" in stdout
    finally:
        for p in (proc, locals().get("resumed")):
            if p is not None and p.poll() is None:
                p.kill()
                p.communicate()


def test_ingest_sigterm_stops_at_round_boundary(tmp_path):
    metrics = tmp_path / "ingest.json"
    proc = _spawn(
        "ingest",
        "--streams", "2", "--chunks", "400", "--chunk-seconds", "5",
        "--faults", "light", "--pool", "0", "--hashes", "16",
        "--metrics-out", str(metrics),
    )
    try:
        _wait_for_line(proc, "ingesting", 60)
        time.sleep(1.5)
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, f"stderr: {stderr}"
    # The scheduler stopped early but still flushed and reported.
    assert "stream" in stdout
    report = json.loads(metrics.read_text())
    assert report, "metrics snapshot missing after signalled stop"
