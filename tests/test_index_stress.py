"""Stress tests: online index maintenance equals bulk construction.

After any sequence of inserts and removes, the Hash-Query structure must
be indistinguishable (values, pointers, probe results) from an index
bulk-built over the surviving query set — the property that makes online
subscription trustworthy.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.hq import HashQueryIndex
from repro.index.probe import probe_index, probe_index_reference
from repro.minhash.family import MinHashFamily


def _population(family, count, seed):
    rng = np.random.default_rng(seed)
    sketches = {}
    lengths = {}
    for qid in range(count):
        elements = rng.choice(8000, size=int(rng.integers(8, 40)), replace=False)
        sketches[qid] = family.sketch(elements)
        lengths[qid] = int(rng.integers(2, 15))
    return sketches, lengths


def _same_structure(left: HashQueryIndex, right: HashQueryIndex) -> None:
    assert left.num_queries == right.num_queries
    for qid in left.query_ids:
        assert np.array_equal(
            left.sketch_values_of(qid), right.sketch_values_of(qid)
        )
        assert left.length_of(qid) == right.length_of(qid)
    for row_left, row_right in zip(left.rows, right.rows):
        assert [e.value for e in row_left] == [e.value for e in row_right]


@settings(max_examples=10, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["insert", "remove"]), st.integers(0, 11)),
        min_size=1,
        max_size=20,
    )
)
def test_online_maintenance_equals_bulk_build(operations):
    family = MinHashFamily(num_hashes=24, seed=7)
    sketches, lengths = _population(family, 12, seed=3)

    # Start with half the population subscribed.
    live = set(range(6))
    online = HashQueryIndex.build(
        {qid: sketches[qid] for qid in live},
        {qid: lengths[qid] for qid in live},
    )
    for action, qid in operations:
        if action == "insert" and qid not in live:
            online.insert(qid, sketches[qid], lengths[qid])
            live.add(qid)
        elif action == "remove" and qid in live and len(live) > 1:
            online.remove(qid)
            live.discard(qid)
    online.check_invariants()

    bulk = HashQueryIndex.build(
        {qid: sketches[qid] for qid in live},
        {qid: lengths[qid] for qid in live},
    )
    _same_structure(online, bulk)

    # Probes through both indexes agree, fast and reference alike.
    rng = np.random.default_rng(11)
    for _ in range(3):
        window = family.sketch(rng.choice(8000, size=20, replace=False))
        view = lambda related: {(e.qid, e.ge, e.lt) for e in related}
        assert view(probe_index(window, online, 0.5)) == view(
            probe_index(window, bulk, 0.5)
        )
        assert view(probe_index(window, online, 0.5)) == view(
            probe_index_reference(window, online, 0.5)
        )


def test_interleaved_churn_visits_every_size():
    """Grow to 20 queries one by one, then shrink to 1, checking
    invariants at every step."""
    family = MinHashFamily(num_hashes=16, seed=9)
    sketches, lengths = _population(family, 20, seed=5)
    index = HashQueryIndex.build({0: sketches[0]}, {0: lengths[0]})
    for qid in range(1, 20):
        index.insert(qid, sketches[qid], lengths[qid])
        index.check_invariants()
        assert index.num_queries == qid + 1
    for qid in range(19, 0, -1):
        index.remove(qid)
        index.check_invariants()
        assert index.num_queries == qid
    assert np.array_equal(index.sketch_values_of(0), sketches[0].values)


def test_randomized_interleaving_probe_equivalence():
    """Randomised subscribe/unsubscribe/probe interleaving.

    After *every* mutation the structure must satisfy its invariants and
    the batched probe must agree with the Figure 5 reference walk on the
    full RelatedQuery contract — qid, both signature planes, and the
    final ``lp`` cursor — exercising the online pointer maintenance of
    ``insert``/``remove`` together with every probe-side cache.
    """
    family = MinHashFamily(num_hashes=32, seed=13)
    sketches, lengths = _population(family, 16, seed=17)
    rng = np.random.default_rng(20080407)

    def check_probes(index):
        for _ in range(2):
            if rng.integers(2):
                window = family.sketch(
                    rng.choice(8000, size=int(rng.integers(10, 30)),
                               replace=False)
                )
            else:  # probe with a subscribed sketch so equal runs occur
                window = sketches[int(rng.choice(sorted(live)))]
            threshold = float(rng.choice([0.0, 0.5, 0.8]))
            prune = bool(rng.integers(2))
            fast = probe_index(window, index, threshold, prune=prune)
            reference = probe_index_reference(
                window, index, threshold, prune=prune
            )
            view = lambda related: {
                (e.qid, e.ge, e.lt, e.lp, e.length_windows) for e in related
            }
            assert view(fast) == view(reference)

    live = set(range(8))
    index = HashQueryIndex.build(
        {qid: sketches[qid] for qid in live},
        {qid: lengths[qid] for qid in live},
    )
    for _step in range(60):
        subscribed = sorted(live)
        unsubscribed = sorted(set(sketches) - live)
        if unsubscribed and (len(live) <= 1 or rng.integers(2)):
            qid = int(rng.choice(unsubscribed))
            index.insert(qid, sketches[qid], lengths[qid])
            live.add(qid)
        else:
            qid = int(rng.choice(subscribed))
            index.remove(qid)
            live.discard(qid)
        index.check_invariants()
        assert sorted(index.query_ids) == sorted(live)
        check_probes(index)
